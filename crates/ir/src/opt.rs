//! Netlist optimization pipeline: rewrite, sweep, rebalance, and
//! cone-reduce a transition system before any blaster sees it.
//!
//! Every engine in the stack — rebuild-per-query, incremental sessions,
//! portfolio races, template stamping — pays per *frame* for whatever CNF
//! the bit-blasters emit, so shrinking the `(Context, TransitionSystem)`
//! pair once, ahead of encoding, speeds every frame of every engine at
//! once. The pipeline is a [`PassManager`] running [`OptPass`]es to a
//! fixpoint:
//!
//! 1. **`rewrite`** — pattern-driven local rewriting: identity /
//!    annihilator folding and constant propagation (via re-interning every
//!    expression through the folding smart constructors), mux collapsing,
//!    and distributivity factoring `a*b + a*c → a*(b+c)` /
//!    `a*b + b → (a+1)*b` (sound in `Z/2^n`: truncating multiplication
//!    distributes over modular addition), which lets hash-consing collapse
//!    multiplier cones that are syntactically different but algebraically
//!    shared — the dominant CNF cost on datapath designs.
//! 2. **`stuck`** — stuck-at-constant register elimination: a state whose
//!    init is a constant `c` and whose next function folds to `c` under
//!    `state := c` can never change; it is substituted away and dropped
//!    (iterated, so constant cascades collapse).
//! 3. **`rebalance`** — associative chains (`add`/`mul`/`and`/`or`/`xor`)
//!    that elaborate as deep linear combs are rebuilt as balanced trees,
//!    cutting cone depth from `O(n)` to `O(log n)`.
//! 4. **`coi`** — cone-of-influence reduction: states not in the support
//!    closure of the proof targets, the environment constraints, *or* the
//!    published signals are dropped. Constraints are never dropped (an
//!    unsatisfiable constraint cluster disjoint from the target cone makes
//!    every property vacuously true — removing it would be unsound) and
//!    signals anchor the cone so counterexample waveforms and Flow-2
//!    prompts render identically before and after optimization.
//! 5. **`satsweep`** ([`OptLevel::SatSweep`] only) — SAT-sweeping:
//!    simulation signatures partition nodes into candidate equivalence
//!    classes, budgeted SAT miters prove or refute each candidate pair,
//!    and proved pairs are merged onto one representative (complemented
//!    equivalence via a NOT wrapper); a separate register-correspondence
//!    stage merges lockstep registers. See [`crate::satsweep`].
//! 6. **`sweep`** — dead-node elimination: the reachable structure is
//!    rebuilt into a fresh arena, compacting away elaboration garbage and
//!    everything the other passes orphaned; constraints that folded to
//!    constant true are removed (constant-false ones are kept — they
//!    constrain the system into vacuity and must keep doing so).
//!
//! **Naming note — two "sweep"s.** `sweep` ([`SweepPass`]) is *arena
//! reclamation*: it proves nothing and merges nothing, it just copies the
//! reachable structure into a fresh arena so orphaned nodes stop costing
//! memory. `satsweep` ([`SatSweepPass`](crate::satsweep::SatSweepPass))
//! is *SAT-sweeping* in the synthesis-literature sense (fraiging): it
//! proves functional equivalences with a solver and rewrites uses, which
//! *creates* the garbage the arena sweep then collects. The two are
//! deliberately adjacent in the pipeline: satsweep runs right before
//! sweep so dead cones are reclaimed in the same round.
//!
//! All rewrites are verdict-preserving equivalences except `stuck` and
//! the `satsweep` register stage, which install proven invariants
//! (`state == c`, `r == s`) and can therefore only strengthen induction —
//! the corpus-wide differential suites (`opt_differential.rs`,
//! `satsweep_differential.rs`) check that in practice verdict classes
//! never move. Callers opt out entirely with [`OptLevel::None`].

use crate::expr::{BinaryOp, Context, Expr, ExprRef, UnaryOp};
use crate::ts::TransitionSystem;
use std::collections::{HashMap, HashSet};

/// How aggressively to optimize a design during prepare.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Escape hatch: run no passes at all; the system is encoded exactly
    /// as elaborated. The differential baseline.
    None,
    /// Local rewriting and stuck-at sweep only (no rebalancing, no
    /// cone-of-influence reduction).
    Basic,
    /// The whole pipeline. The default.
    #[default]
    Full,
    /// Everything in `Full` plus SAT-sweeping (simulation-guided
    /// equivalence merging with bounded solver calls) and register
    /// correspondence. More prepare-time work for smaller per-frame CNF;
    /// opt-in because the sweep spends real solver effort during prepare.
    SatSweep,
}

impl OptLevel {
    /// A level-specific salt mixed into session fingerprints and service
    /// cache keys, so warm capital built from an optimized system is never
    /// adopted by (or served to) a differently-optimized copy of the same
    /// source design. `None` salts to 0, keeping legacy fingerprints valid.
    pub fn salt(self) -> u64 {
        match self {
            OptLevel::None => 0,
            OptLevel::Basic => 0x9e37_79b9_7f4a_7c15,
            OptLevel::Full => 0xd1b5_4a32_d192_ed03,
            OptLevel::SatSweep => 0x94d0_49bb_1331_11eb,
        }
    }
}

/// Configuration for [`optimize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Pipeline aggressiveness.
    pub level: OptLevel,
    /// Upper bound on fixpoint rounds (each round runs every pass once).
    pub max_rounds: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { level: OptLevel::default(), max_rounds: 4 }
    }
}

impl OptConfig {
    /// Sets the pipeline level.
    pub fn with_level(mut self, level: OptLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the fixpoint round bound.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }
}

/// Applications of one pass, accumulated across fixpoint rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassCount {
    /// Pass name (`rewrite`, `stuck`, `rebalance`, `coi`, `satsweep`,
    /// `sweep`).
    pub pass: String,
    /// Number of applications (rewrites fired, states dropped, chains
    /// rebalanced, nodes swept — each pass's natural unit).
    pub applications: u64,
}

/// What the pipeline did to one design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// The level the pipeline ran at.
    pub level: OptLevel,
    /// Fixpoint rounds executed (0 when the level is `None`).
    pub rounds: usize,
    /// Arena nodes before optimization.
    pub nodes_before: usize,
    /// Arena nodes after the final sweep.
    pub nodes_after: usize,
    /// Pattern rewrites fired by the `rewrite` pass.
    pub rewrites: u64,
    /// Associative chains rebuilt by the `rebalance` pass.
    pub chains_rebalanced: u64,
    /// Stuck-at-constant registers substituted away.
    pub stuck_states: u64,
    /// States dropped by cone-of-influence reduction.
    pub coi_dropped_states: u64,
    /// Constraints that folded to constant true and were removed.
    pub constraints_dropped: u64,
    /// SAT-sweep candidate pairs proved equivalent (UNSAT miters plus
    /// structural register correspondences).
    pub pairs_proved: u64,
    /// SAT-sweep candidate pairs refuted by a satisfiable miter.
    pub pairs_refuted: u64,
    /// Nodes the SAT-sweep rewrote onto a class representative
    /// (including merged registers).
    pub nodes_merged: u64,
    /// Solver conflicts spent inside SAT-sweep equivalence queries.
    pub sweep_conflicts: u64,
    /// Per-pass application counts, in pipeline order.
    pub per_pass: Vec<PassCount>,
}

impl genfv_obs::Accumulate for OptStats {
    /// Fold another design's (or round's) pipeline stats into totals:
    /// counts sum, per-pass applications merge by pass name, and the
    /// level follows the most recent stats that actually saw an arena.
    fn absorb(&mut self, other: &Self) {
        if other.nodes_before > 0 {
            self.level = other.level;
        }
        self.rounds += other.rounds;
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
        self.rewrites += other.rewrites;
        self.chains_rebalanced += other.chains_rebalanced;
        self.stuck_states += other.stuck_states;
        self.coi_dropped_states += other.coi_dropped_states;
        self.constraints_dropped += other.constraints_dropped;
        self.pairs_proved += other.pairs_proved;
        self.pairs_refuted += other.pairs_refuted;
        self.nodes_merged += other.nodes_merged;
        self.sweep_conflicts += other.sweep_conflicts;
        for pc in &other.per_pass {
            match self.per_pass.iter_mut().find(|mine| mine.pass == pc.pass) {
                Some(mine) => mine.applications += pc.applications,
                None => self.per_pass.push(pc.clone()),
            }
        }
    }
}

impl OptStats {
    /// Nodes eliminated end to end (saturating; the pipeline never grows
    /// the reachable arena).
    pub fn nodes_removed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }

    /// Total states dropped by any pass (stuck-at plus cone-of-influence).
    pub fn states_dropped(&self) -> u64 {
        self.stuck_states + self.coi_dropped_states
    }

    /// One-line human summary, used in reports and service logs. The
    /// SAT-sweep counters are appended only when the sweep actually ran,
    /// keeping `None`/`Basic`/`Full` summaries byte-stable.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "opt[{:?}] rounds={} nodes {}→{} rewrites={} rebal={} stuck={} coi={}",
            self.level,
            self.rounds,
            self.nodes_before,
            self.nodes_after,
            self.rewrites,
            self.chains_rebalanced,
            self.stuck_states,
            self.coi_dropped_states
        );
        if self.pairs_proved + self.pairs_refuted + self.nodes_merged + self.sweep_conflicts > 0 {
            line.push_str(&format!(
                " satsweep proved={} refuted={} merged={} conflicts={}",
                self.pairs_proved, self.pairs_refuted, self.nodes_merged, self.sweep_conflicts
            ));
        }
        line
    }
}

/// One optimization pass over `(Context, TransitionSystem)`.
///
/// A pass mutates the system (and the extra proof-obligation roots) in
/// place and reports how many times it fired; the [`PassManager`] iterates
/// the pipeline until a full round reports zero applications.
pub trait OptPass {
    /// Stable pass name used in [`OptStats::per_pass`].
    fn name(&self) -> &'static str;
    /// Runs the pass, returning the number of applications.
    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64;
    /// Span name recorded per application when the pipeline runs under
    /// an enabled observability handle (static because spans carry
    /// `&'static str` names; custom passes fall back to `opt.pass`).
    fn span_name(&self) -> &'static str {
        match self.name() {
            "rewrite" => "opt.rewrite",
            "stuck" => "opt.stuck",
            "rebalance" => "opt.rebalance",
            "coi" => "opt.coi",
            "satsweep" => "opt.satsweep",
            "sweep" => "opt.sweep",
            _ => "opt.pass",
        }
    }
    /// Hands the pass the pipeline's observability handle before it runs
    /// (passes that issue solver calls record their own counters).
    fn attach_obs(&mut self, _obs: &genfv_obs::Obs) {}
    /// Folds pass-specific counters into the pipeline stats after the
    /// fixpoint loop (the generic per-pass application count only carries
    /// one number; passes with richer accounting report it here).
    fn fold_stats(&self, _stats: &mut OptStats) {}
}

/// Runs a pass pipeline to a fixpoint with per-pass statistics.
pub struct PassManager {
    passes: Vec<Box<dyn OptPass>>,
    max_rounds: usize,
}

impl PassManager {
    /// An empty manager with the given round bound.
    pub fn new(max_rounds: usize) -> Self {
        PassManager { passes: Vec::new(), max_rounds: max_rounds.max(1) }
    }

    /// Appends a pass to the pipeline (builder style).
    pub fn with_pass(mut self, pass: Box<dyn OptPass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// The standard pipeline for an [`OptLevel`] (empty for `None`).
    pub fn for_level(level: OptLevel, max_rounds: usize) -> Self {
        let pm = PassManager::new(max_rounds);
        match level {
            OptLevel::None => pm,
            OptLevel::Basic => pm
                .with_pass(Box::new(RewritePass))
                .with_pass(Box::new(StuckAtPass))
                .with_pass(Box::new(SweepPass)),
            OptLevel::Full => pm
                .with_pass(Box::new(RewritePass))
                .with_pass(Box::new(StuckAtPass))
                .with_pass(Box::new(RebalancePass))
                .with_pass(Box::new(CoiPass))
                .with_pass(Box::new(SweepPass)),
            OptLevel::SatSweep => pm
                .with_pass(Box::new(RewritePass))
                .with_pass(Box::new(StuckAtPass))
                .with_pass(Box::new(RebalancePass))
                .with_pass(Box::new(CoiPass))
                .with_pass(Box::new(crate::satsweep::SatSweepPass::new()))
                .with_pass(Box::new(SweepPass)),
        }
    }

    /// Runs every pass in order, repeating rounds until no *semantic*
    /// pass applies anything or the round bound is hit. `roots` are extra
    /// proof obligations (compiled property expressions) rewritten
    /// alongside the system.
    ///
    /// The sweep's node count is deliberately excluded from the
    /// convergence check: rewrite probes intern speculative nodes even on
    /// rounds where no rule lands, so the sweep (which runs last and
    /// leaves a compact arena) always has *something* to collect — a
    /// round where only the sweep fired is a fixpoint, not progress.
    pub fn run(
        &mut self,
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut Vec<ExprRef>,
    ) -> OptStats {
        self.run_with(ctx, ts, roots, &genfv_obs::Obs::off())
    }

    /// [`PassManager::run`] with observability: each pass application
    /// records an `opt.<pass>` span under the caller's open span, so a
    /// trace shows exactly where prepare time went.
    pub fn run_with(
        &mut self,
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut Vec<ExprRef>,
        obs: &genfv_obs::Obs,
    ) -> OptStats {
        let mut stats = OptStats { nodes_before: ctx.num_nodes(), ..OptStats::default() };
        let constraints_before = ts.constraints().len();
        let mut per: Vec<PassCount> = self
            .passes
            .iter()
            .map(|p| PassCount { pass: p.name().to_string(), applications: 0 })
            .collect();
        for pass in self.passes.iter_mut() {
            pass.attach_obs(obs);
        }
        for _ in 0..self.max_rounds {
            let mut semantic_fires = 0u64;
            for (i, pass) in self.passes.iter_mut().enumerate() {
                let span = obs.span(pass.span_name());
                let n = pass.run(ctx, ts, roots.as_mut_slice());
                span.end();
                per[i].applications += n;
                if pass.name() != "sweep" {
                    semantic_fires += n;
                }
            }
            stats.rounds += 1;
            if semantic_fires == 0 {
                break;
            }
        }
        stats.nodes_after = ctx.num_nodes();
        stats.constraints_dropped =
            constraints_before.saturating_sub(ts.constraints().len()) as u64;
        for pc in &per {
            match pc.pass.as_str() {
                "rewrite" => stats.rewrites += pc.applications,
                "rebalance" => stats.chains_rebalanced += pc.applications,
                "stuck" => stats.stuck_states += pc.applications,
                "coi" => stats.coi_dropped_states += pc.applications,
                _ => {}
            }
        }
        for pass in &self.passes {
            pass.fold_stats(&mut stats);
        }
        stats.per_pass = per;
        stats
    }
}

/// Optimizes `(ctx, ts)` in place at the configured level. `roots` are the
/// compiled proof-obligation expressions (one per target); they are
/// rewritten in place so callers can re-anchor their properties afterwards.
pub fn optimize(
    ctx: &mut Context,
    ts: &mut TransitionSystem,
    roots: &mut Vec<ExprRef>,
    config: &OptConfig,
) -> OptStats {
    optimize_with(ctx, ts, roots, config, &genfv_obs::Obs::off())
}

/// [`optimize`] with observability: the whole pipeline runs under an
/// `opt` span and each pass application records an `opt.<pass>` child.
pub fn optimize_with(
    ctx: &mut Context,
    ts: &mut TransitionSystem,
    roots: &mut Vec<ExprRef>,
    config: &OptConfig,
    obs: &genfv_obs::Obs,
) -> OptStats {
    if config.level == OptLevel::None {
        let n = ctx.num_nodes();
        return OptStats {
            level: OptLevel::None,
            nodes_before: n,
            nodes_after: n,
            ..OptStats::default()
        };
    }
    let _span = obs.span("opt");
    let mut pm = PassManager::for_level(config.level, config.max_rounds);
    let mut stats = pm.run_with(ctx, ts, roots, obs);
    stats.level = config.level;
    stats
}

// --- shared machinery -------------------------------------------------------

pub(crate) fn mk_unary(ctx: &mut Context, op: UnaryOp, a: ExprRef) -> ExprRef {
    match op {
        UnaryOp::Not => ctx.not(a),
        UnaryOp::Neg => ctx.neg(a),
        UnaryOp::RedAnd => ctx.red_and(a),
        UnaryOp::RedOr => ctx.red_or(a),
        UnaryOp::RedXor => ctx.red_xor(a),
    }
}

pub(crate) fn mk_binary(ctx: &mut Context, op: BinaryOp, a: ExprRef, b: ExprRef) -> ExprRef {
    match op {
        BinaryOp::And => ctx.and(a, b),
        BinaryOp::Or => ctx.or(a, b),
        BinaryOp::Xor => ctx.xor(a, b),
        BinaryOp::Add => ctx.add(a, b),
        BinaryOp::Sub => ctx.sub(a, b),
        BinaryOp::Mul => ctx.mul(a, b),
        BinaryOp::Udiv => ctx.udiv(a, b),
        BinaryOp::Urem => ctx.urem(a, b),
        BinaryOp::Eq => ctx.eq(a, b),
        BinaryOp::Ult => ctx.ult(a, b),
        BinaryOp::Ule => ctx.ule(a, b),
        BinaryOp::Slt => ctx.slt(a, b),
        BinaryOp::Concat => ctx.concat(a, b),
        BinaryOp::Shl => ctx.shl(a, b),
        BinaryOp::Lshr => ctx.lshr(a, b),
    }
}

/// Counts parent edges for every node reachable from `tops` (tops count as
/// one edge each). Used to keep sharing-aware rewrites from duplicating
/// multi-use cones.
fn use_counts(ctx: &Context, tops: &[ExprRef]) -> HashMap<ExprRef, u32> {
    let mut uses: HashMap<ExprRef, u32> = HashMap::new();
    let mut seen: HashSet<ExprRef> = HashSet::new();
    let mut stack: Vec<ExprRef> = Vec::new();
    for &t in tops {
        *uses.entry(t).or_insert(0) += 1;
        stack.push(t);
    }
    while let Some(e) = stack.pop() {
        if !seen.insert(e) {
            continue;
        }
        let child = |c: ExprRef, uses: &mut HashMap<ExprRef, u32>, stack: &mut Vec<ExprRef>| {
            *uses.entry(c).or_insert(0) += 1;
            stack.push(c);
        };
        match *ctx.expr(e) {
            Expr::Const(_) | Expr::Symbol { .. } => {}
            Expr::Unary(_, a) => child(a, &mut uses, &mut stack),
            Expr::Binary(_, a, b) => {
                child(a, &mut uses, &mut stack);
                child(b, &mut uses, &mut stack);
            }
            Expr::Ite { cond, tru, fls } => {
                child(cond, &mut uses, &mut stack);
                child(tru, &mut uses, &mut stack);
                child(fls, &mut uses, &mut stack);
            }
            Expr::Extract { value, .. } => child(value, &mut uses, &mut stack),
        }
    }
    uses
}

/// Every expression position of the system plus the proof roots.
fn all_tops(ts: &TransitionSystem, roots: &[ExprRef]) -> Vec<ExprRef> {
    let mut tops: Vec<ExprRef> = Vec::new();
    for s in ts.states() {
        if let Some(init) = s.init {
            tops.push(init);
        }
        tops.push(s.next);
    }
    tops.extend_from_slice(ts.constraints());
    tops.extend(ts.signals().iter().map(|(_, e)| *e));
    tops.extend_from_slice(roots);
    tops
}

/// Memoized bottom-up rebuild of `e` through the folding smart
/// constructors, applying `rule` at each reconstructed node until it stops
/// firing there. Increments `fired` per rule application.
fn rebuild(
    ctx: &mut Context,
    e: ExprRef,
    memo: &mut HashMap<ExprRef, ExprRef>,
    rule: &mut dyn FnMut(&mut Context, ExprRef) -> Option<ExprRef>,
    fired: &mut u64,
) -> ExprRef {
    if let Some(&r) = memo.get(&e) {
        return r;
    }
    let mut cur = match ctx.expr(e).clone() {
        Expr::Const(_) | Expr::Symbol { .. } => e,
        Expr::Unary(op, a) => {
            let na = rebuild(ctx, a, memo, rule, fired);
            mk_unary(ctx, op, na)
        }
        Expr::Binary(op, a, b) => {
            let na = rebuild(ctx, a, memo, rule, fired);
            let nb = rebuild(ctx, b, memo, rule, fired);
            mk_binary(ctx, op, na, nb)
        }
        Expr::Ite { cond, tru, fls } => {
            let nc = rebuild(ctx, cond, memo, rule, fired);
            let nt = rebuild(ctx, tru, memo, rule, fired);
            let nf = rebuild(ctx, fls, memo, rule, fired);
            ctx.ite(nc, nt, nf)
        }
        Expr::Extract { value, hi, lo } => {
            let nv = rebuild(ctx, value, memo, rule, fired);
            ctx.extract(nv, hi, lo)
        }
    };
    // Local fixpoint: a rewrite can expose another at the same position.
    for _ in 0..8 {
        match rule(ctx, cur) {
            Some(next) if next != cur => {
                *fired += 1;
                cur = next;
            }
            _ => break,
        }
    }
    memo.insert(e, cur);
    cur
}

// --- pass 1: pattern rewriting ---------------------------------------------

/// Pattern-driven local rewriting (see module docs).
pub struct RewritePass;

impl RewritePass {
    fn rule(ctx: &mut Context, e: ExprRef, uses: &HashMap<ExprRef, u32>) -> Option<ExprRef> {
        match ctx.expr(e).clone() {
            Expr::Ite { cond, tru, fls } => {
                // ite(~c, t, f) → ite(c, f, t)
                if let Expr::Unary(UnaryOp::Not, c) = *ctx.expr(cond) {
                    return Some(ctx.ite(c, fls, tru));
                }
                // Nested same-condition muxes collapse.
                if let Expr::Ite { cond: c2, tru: t2, .. } = *ctx.expr(tru) {
                    if c2 == cond {
                        return Some(ctx.ite(cond, t2, fls));
                    }
                }
                if let Expr::Ite { cond: c2, fls: f2, .. } = *ctx.expr(fls) {
                    if c2 == cond {
                        return Some(ctx.ite(cond, tru, f2));
                    }
                }
                // 1-bit muxes with constant arms are plain gates.
                if ctx.width_of(tru) == 1 {
                    let tv = ctx.const_value(tru).map(|v| v.to_bool());
                    let fv = ctx.const_value(fls).map(|v| v.to_bool());
                    return match (tv, fv) {
                        (Some(true), Some(false)) => Some(cond),
                        (Some(false), Some(true)) => Some(ctx.not(cond)),
                        (Some(true), None) => Some(ctx.or(cond, fls)),
                        (Some(false), None) => {
                            let nc = ctx.not(cond);
                            Some(ctx.and(nc, fls))
                        }
                        (None, Some(false)) => Some(ctx.and(cond, tru)),
                        (None, Some(true)) => {
                            let nc = ctx.not(cond);
                            Some(ctx.or(nc, tru))
                        }
                        _ => None,
                    };
                }
                None
            }
            Expr::Binary(BinaryOp::Add, p, q) => Self::factor_add(ctx, p, q, uses),
            Expr::Binary(BinaryOp::And, p, q) => {
                // Absorption: a & (a | b) = a.
                if let Expr::Binary(BinaryOp::Or, x, y) = *ctx.expr(q) {
                    if x == p || y == p {
                        return Some(p);
                    }
                }
                if let Expr::Binary(BinaryOp::Or, x, y) = *ctx.expr(p) {
                    if x == q || y == q {
                        return Some(q);
                    }
                }
                None
            }
            Expr::Binary(BinaryOp::Or, p, q) => {
                // Absorption: a | (a & b) = a.
                if let Expr::Binary(BinaryOp::And, x, y) = *ctx.expr(q) {
                    if x == p || y == p {
                        return Some(p);
                    }
                }
                if let Expr::Binary(BinaryOp::And, x, y) = *ctx.expr(p) {
                    if x == q || y == q {
                        return Some(q);
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Distributivity factoring over `Z/2^n`: `a*b + a*c → a*(b+c)` and
    /// `a*b + b → (a+1)*b`. Only fires when the multiplier cone is not
    /// shared elsewhere (use count ≤ 1), so a multi-use product is never
    /// duplicated into a second multiplier.
    fn factor_add(
        ctx: &mut Context,
        p: ExprRef,
        q: ExprRef,
        uses: &HashMap<ExprRef, u32>,
    ) -> Option<ExprRef> {
        let single = |e: ExprRef| uses.get(&e).copied().unwrap_or(1) <= 1;
        let as_mul = |ctx: &Context, e: ExprRef| match *ctx.expr(e) {
            Expr::Binary(BinaryOp::Mul, a, b) => Some((a, b)),
            _ => None,
        };
        let mp = as_mul(ctx, p);
        let mq = as_mul(ctx, q);
        if let (Some((a, b)), Some((c, d))) = (mp, mq) {
            if single(p) && single(q) {
                let (common, x, y) = if a == c {
                    (a, b, d)
                } else if a == d {
                    (a, b, c)
                } else if b == c {
                    (b, a, d)
                } else if b == d {
                    (b, a, c)
                } else {
                    return None;
                };
                let sum = ctx.add(x, y);
                return Some(ctx.mul(common, sum));
            }
            return None;
        }
        // Mixed form: mul(a, b) + t with t one of the factors.
        let (m, (a, b), t) = match (mp, mq) {
            (Some(f), None) => (p, f, q),
            (None, Some(f)) => (q, f, p),
            _ => return None,
        };
        if !single(m) {
            return None;
        }
        let w = ctx.width_of(t);
        if t == a {
            let one = ctx.constant(1, w);
            let sum = ctx.add(b, one);
            return Some(ctx.mul(a, sum));
        }
        if t == b {
            let one = ctx.constant(1, w);
            let sum = ctx.add(a, one);
            return Some(ctx.mul(b, sum));
        }
        None
    }
}

impl OptPass for RewritePass {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let tops = all_tops(ts, roots);
        let uses = use_counts(ctx, &tops);
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        let mut fired = 0u64;
        let mut rule = |ctx: &mut Context, e: ExprRef| RewritePass::rule(ctx, e, &uses);
        ts.map_exprs(|e| rebuild(ctx, e, &mut memo, &mut rule, &mut fired));
        for r in roots.iter_mut() {
            *r = rebuild(ctx, *r, &mut memo, &mut rule, &mut fired);
        }
        fired
    }
}

// --- pass 2: stuck-at-constant registers ------------------------------------

/// Eliminates registers provably stuck at their constant reset value.
pub struct StuckAtPass;

impl OptPass for StuckAtPass {
    fn name(&self) -> &'static str {
        "stuck"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let mut total = 0u64;
        loop {
            let mut stuck: HashMap<ExprRef, ExprRef> = HashMap::new();
            for s in ts.states() {
                if let Some(init) = s.init {
                    if ctx.const_value(init).is_some() {
                        let m = HashMap::from([(s.symbol, init)]);
                        if ctx.substitute(s.next, &m) == init {
                            stuck.insert(s.symbol, init);
                        }
                    }
                }
            }
            if stuck.is_empty() {
                return total;
            }
            total += stuck.len() as u64;
            ts.map_exprs(|e| ctx.substitute(e, &stuck));
            for r in roots.iter_mut() {
                *r = ctx.substitute(*r, &stuck);
            }
            ts.retain_states(|sym| !stuck.contains_key(&sym));
        }
    }
}

// --- pass 3: associative chain rebalancing ----------------------------------

/// Rebuilds deep linear combs of associative operators as balanced trees.
pub struct RebalancePass;

const ASSOC_OPS: [BinaryOp; 5] =
    [BinaryOp::Add, BinaryOp::Mul, BinaryOp::And, BinaryOp::Or, BinaryOp::Xor];

impl RebalancePass {
    /// Collects the leaves of the maximal `op`-chain rooted at `e`. A chain
    /// link must be a single-use application of the same operator — shared
    /// nodes stay leaves so their cones keep being shared.
    fn leaves(
        ctx: &mut Context,
        e: ExprRef,
        op: BinaryOp,
        uses: &HashMap<ExprRef, u32>,
        memo: &mut HashMap<ExprRef, ExprRef>,
        fired: &mut u64,
        out: &mut Vec<ExprRef>,
    ) {
        let (a, b) = match *ctx.expr(e) {
            Expr::Binary(o, a, b) if o == op => (a, b),
            _ => unreachable!("leaves called on a non-chain node"),
        };
        for x in [a, b] {
            let link = matches!(*ctx.expr(x), Expr::Binary(o, ..) if o == op)
                && uses.get(&x).copied().unwrap_or(0) <= 1;
            if link {
                Self::leaves(ctx, x, op, uses, memo, fired, out);
            } else {
                out.push(Self::rebuild(ctx, x, uses, memo, fired));
            }
        }
    }

    /// Operator depth of the `op`-chain skeleton rooted at `e` (leaves and
    /// shared nodes count zero). A left-leaning chain of n leaves has
    /// depth n-1; a tournament tree has depth ceil(log2 n).
    fn chain_depth(ctx: &Context, e: ExprRef, op: BinaryOp, uses: &HashMap<ExprRef, u32>) -> u32 {
        match *ctx.expr(e) {
            Expr::Binary(o, a, b) if o == op => {
                let sub = |ctx: &Context, x: ExprRef| {
                    let link = matches!(*ctx.expr(x), Expr::Binary(oo, ..) if oo == op)
                        && uses.get(&x).copied().unwrap_or(0) <= 1;
                    if link {
                        Self::chain_depth(ctx, x, op, uses)
                    } else {
                        0
                    }
                };
                1 + sub(ctx, a).max(sub(ctx, b))
            }
            _ => 0,
        }
    }

    fn rebuild(
        ctx: &mut Context,
        e: ExprRef,
        uses: &HashMap<ExprRef, u32>,
        memo: &mut HashMap<ExprRef, ExprRef>,
        fired: &mut u64,
    ) -> ExprRef {
        if let Some(&r) = memo.get(&e) {
            return r;
        }
        let result = match ctx.expr(e).clone() {
            Expr::Const(_) | Expr::Symbol { .. } => e,
            Expr::Binary(op, ..) if ASSOC_OPS.contains(&op) => {
                // Only reshape when the tournament tree is strictly
                // shallower than what is already there — a chain that is
                // balanced (or canonically reordered into an equivalent
                // shape by the smart constructors) must be a fixpoint, or
                // alternating rounds would ping-pong between layouts.
                let orig_depth = Self::chain_depth(ctx, e, op, uses);
                let mut ls: Vec<ExprRef> = Vec::new();
                Self::leaves(ctx, e, op, uses, memo, fired, &mut ls);
                let balanced_depth = usize::BITS - (ls.len().max(1) - 1).leading_zeros();
                if ls.len() >= 3 && balanced_depth < orig_depth {
                    // Tournament reduction: pair adjacent leaves level by
                    // level, giving depth ceil(log2 n) instead of n-1.
                    while ls.len() > 1 {
                        let mut next_level = Vec::with_capacity(ls.len().div_ceil(2));
                        let mut it = ls.chunks_exact(2);
                        for pair in &mut it {
                            next_level.push(mk_binary(ctx, op, pair[0], pair[1]));
                        }
                        next_level.extend_from_slice(it.remainder());
                        ls = next_level;
                    }
                    let balanced = ls[0];
                    if balanced != e {
                        *fired += 1;
                    }
                    balanced
                } else {
                    let (a, b) = match *ctx.expr(e) {
                        Expr::Binary(_, a, b) => (a, b),
                        _ => unreachable!(),
                    };
                    let na = Self::rebuild(ctx, a, uses, memo, fired);
                    let nb = Self::rebuild(ctx, b, uses, memo, fired);
                    mk_binary(ctx, op, na, nb)
                }
            }
            Expr::Unary(op, a) => {
                let na = Self::rebuild(ctx, a, uses, memo, fired);
                mk_unary(ctx, op, na)
            }
            Expr::Binary(op, a, b) => {
                let na = Self::rebuild(ctx, a, uses, memo, fired);
                let nb = Self::rebuild(ctx, b, uses, memo, fired);
                mk_binary(ctx, op, na, nb)
            }
            Expr::Ite { cond, tru, fls } => {
                let nc = Self::rebuild(ctx, cond, uses, memo, fired);
                let nt = Self::rebuild(ctx, tru, uses, memo, fired);
                let nf = Self::rebuild(ctx, fls, uses, memo, fired);
                ctx.ite(nc, nt, nf)
            }
            Expr::Extract { value, hi, lo } => {
                let nv = Self::rebuild(ctx, value, uses, memo, fired);
                ctx.extract(nv, hi, lo)
            }
        };
        memo.insert(e, result);
        result
    }
}

impl OptPass for RebalancePass {
    fn name(&self) -> &'static str {
        "rebalance"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let tops = all_tops(ts, roots);
        let uses = use_counts(ctx, &tops);
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        let mut fired = 0u64;
        ts.map_exprs(|e| Self::rebuild(ctx, e, &uses, &mut memo, &mut fired));
        for r in roots.iter_mut() {
            *r = Self::rebuild(ctx, *r, &uses, &mut memo, &mut fired);
        }
        fired
    }
}

// --- pass 4: cone-of-influence reduction ------------------------------------

/// Drops states outside the support closure of targets, constraints, and
/// published signals (see module docs for the soundness argument).
pub struct CoiPass;

impl OptPass for CoiPass {
    fn name(&self) -> &'static str {
        "coi"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let mut work: Vec<ExprRef> = Vec::new();
        work.extend_from_slice(roots);
        work.extend_from_slice(ts.constraints());
        work.extend(ts.signals().iter().map(|(_, e)| *e));
        let mut needed: HashSet<ExprRef> = HashSet::new();
        let mut visited: HashSet<ExprRef> = HashSet::new();
        while let Some(e) = work.pop() {
            if !visited.insert(e) {
                continue;
            }
            for sym in ctx.free_symbols(e) {
                if needed.insert(sym) {
                    if let Some(s) = ts.find_state(sym) {
                        if let Some(init) = s.init {
                            work.push(init);
                        }
                        work.push(s.next);
                    }
                }
            }
        }
        ts.retain_states(|sym| needed.contains(&sym)) as u64
    }
}

// --- pass 5: sweep / dead-node elimination ----------------------------------

/// Rebuilds the reachable structure into a fresh arena, dropping dead
/// nodes and constant-true constraints.
pub struct SweepPass;

fn copy_expr(
    old: &Context,
    new: &mut Context,
    e: ExprRef,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    if let Some(&r) = memo.get(&e) {
        return r;
    }
    let result = match old.expr(e).clone() {
        Expr::Const(v) => new.value(v),
        Expr::Symbol { name, width } => new.symbol(&name, width),
        Expr::Unary(op, a) => {
            let na = copy_expr(old, new, a, memo);
            mk_unary(new, op, na)
        }
        Expr::Binary(op, a, b) => {
            let na = copy_expr(old, new, a, memo);
            let nb = copy_expr(old, new, b, memo);
            mk_binary(new, op, na, nb)
        }
        Expr::Ite { cond, tru, fls } => {
            let nc = copy_expr(old, new, cond, memo);
            let nt = copy_expr(old, new, tru, memo);
            let nf = copy_expr(old, new, fls, memo);
            new.ite(nc, nt, nf)
        }
        Expr::Extract { value, hi, lo } => {
            let nv = copy_expr(old, new, value, memo);
            new.extract(nv, hi, lo)
        }
    };
    memo.insert(e, result);
    result
}

impl OptPass for SweepPass {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(&mut self, ctx: &mut Context, ts: &mut TransitionSystem, roots: &mut [ExprRef]) -> u64 {
        let before = ctx.num_nodes();
        let mut new_ctx = Context::new();
        let mut new_ts = TransitionSystem::new(ts.name());
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        {
            let old: &Context = ctx;
            // Inputs and state symbols first, preserving declaration order
            // so symbol enumeration (and thus waveform row order) survives.
            for &i in ts.inputs() {
                let ni = copy_expr(old, &mut new_ctx, i, &mut memo);
                new_ts.add_input(ni);
            }
            for s in ts.states() {
                let sym = copy_expr(old, &mut new_ctx, s.symbol, &mut memo);
                let init = s.init.map(|i| copy_expr(old, &mut new_ctx, i, &mut memo));
                let next = copy_expr(old, &mut new_ctx, s.next, &mut memo);
                new_ts.add_state(sym, init, next);
            }
            for &c in ts.constraints() {
                let nc = copy_expr(old, &mut new_ctx, c, &mut memo);
                // Constant-true constraints are vacuous; constant-false ones
                // keep the system in (sound) vacuity and must stay.
                let is_true = new_ctx.const_value(nc).map(|v| v.to_bool()).unwrap_or(false);
                if !is_true {
                    new_ts.add_constraint(nc);
                }
            }
            for (name, e) in ts.signals() {
                let ne = copy_expr(old, &mut new_ctx, *e, &mut memo);
                new_ts.add_signal(name.clone(), ne);
            }
            for r in roots.iter_mut() {
                *r = copy_expr(old, &mut new_ctx, *r, &mut memo);
            }
        }
        let after = new_ctx.num_nodes();
        *ctx = new_ctx;
        *ts = new_ts;
        before.saturating_sub(after) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, Env};
    use crate::value::BitVecValue;

    fn run_full(
        ctx: &mut Context,
        ts: &mut TransitionSystem,
        roots: &mut Vec<ExprRef>,
    ) -> OptStats {
        optimize(ctx, ts, roots, &OptConfig::default())
    }

    #[test]
    fn level_none_is_identity() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let garbage = ctx.mul(a, a);
        let _ = garbage;
        let mut ts = TransitionSystem::new("t");
        ts.add_input(a);
        let n = ctx.num_nodes();
        let mut roots = vec![];
        let stats = optimize(
            &mut ctx,
            &mut ts,
            &mut roots,
            &OptConfig::default().with_level(OptLevel::None),
        );
        assert_eq!(stats.rounds, 0);
        assert_eq!(ctx.num_nodes(), n, "None must not touch the arena");
    }

    #[test]
    fn factoring_shares_multiplier_cones() {
        // The mul_incr shape: lhs <= (a+1)*b, rhs <= a*b + b.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 6);
        let b = ctx.symbol("b", 6);
        let one = ctx.constant(1, 6);
        let lhs = ctx.symbol("lhs", 6);
        let rhs = ctx.symbol("rhs", 6);
        let a1 = ctx.add(a, one);
        let lhs_next = ctx.mul(a1, b);
        let ab = ctx.mul(a, b);
        let rhs_next = ctx.add(ab, b);
        assert_ne!(lhs_next, rhs_next, "not shared before optimization");
        let zero = ctx.constant(0, 6);
        let mut ts = TransitionSystem::new("mul_incr");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_state(lhs, Some(zero), lhs_next);
        ts.add_state(rhs, Some(zero), rhs_next);
        ts.add_signal("lhs", lhs);
        ts.add_signal("rhs", rhs);
        let prop = ctx.eq(lhs, rhs);
        let mut roots = vec![prop];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.rewrites >= 1, "factoring should fire: {stats:?}");
        assert_eq!(
            ts.states()[0].next,
            ts.states()[1].next,
            "both next functions hash-cons to one multiplier cone"
        );
    }

    #[test]
    fn factoring_distrib_shape() {
        // The mul_distrib shape: lhs <= a*(b+c), rhs <= a*b + a*c.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 6);
        let b = ctx.symbol("b", 6);
        let c = ctx.symbol("c", 6);
        let bc = ctx.add(b, c);
        let lhs_next = ctx.mul(a, bc);
        let ab = ctx.mul(a, b);
        let ac = ctx.mul(a, c);
        let rhs_next = ctx.add(ab, ac);
        let lhs = ctx.symbol("lhs", 6);
        let rhs = ctx.symbol("rhs", 6);
        let zero = ctx.constant(0, 6);
        let mut ts = TransitionSystem::new("mul_distrib");
        ts.add_state(lhs, Some(zero), lhs_next);
        ts.add_state(rhs, Some(zero), rhs_next);
        let prop = ctx.eq(lhs, rhs);
        let mut roots = vec![prop];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.rewrites >= 1);
        assert_eq!(ts.states()[0].next, ts.states()[1].next);
    }

    #[test]
    fn factoring_respects_sharing() {
        // a*b is also published as a signal (use count 2): factoring the
        // sum would duplicate the multiplier, so it must not fire.
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let ab = ctx.mul(a, b);
        let sum = ctx.add(ab, b);
        let mut ts = TransitionSystem::new("shared");
        ts.add_input(a);
        ts.add_input(b);
        ts.add_signal("prod", ab);
        ts.add_signal("sum", sum);
        let mut roots = vec![];
        let _ = run_full(&mut ctx, &mut ts, &mut roots);
        let prod = ts.find_signal("prod").unwrap();
        let s = ts.find_signal("sum").unwrap();
        assert!(
            matches!(*ctx.expr(s), Expr::Binary(BinaryOp::Add, x, y) if x == prod || y == prod),
            "shared product must stay a shared operand of the sum"
        );
    }

    #[test]
    fn mux_collapsing() {
        let mut ctx = Context::new();
        let c = ctx.symbol("c", 1);
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let d = ctx.symbol("d", 4);
        // ite(~c, ite(~c, a, b), d) should collapse to ite(c, d, a).
        let nc = ctx.not(c);
        let inner = ctx.ite(nc, a, b);
        let outer = ctx.ite(nc, inner, d);
        let mut ts = TransitionSystem::new("mux");
        ts.add_signal("m", outer);
        let mut roots = vec![];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.rewrites >= 1);
        // The sweep rebuilt the arena; re-resolve symbols by name.
        let c = ctx.find_symbol("c").unwrap();
        let a = ctx.find_symbol("a").unwrap();
        let d = ctx.find_symbol("d").unwrap();
        let m = ts.find_signal("m").unwrap();
        let expected = ctx.ite(c, d, a);
        assert_eq!(m, expected);
    }

    #[test]
    fn one_bit_mux_becomes_gates() {
        let mut ctx = Context::new();
        let c = ctx.symbol("c", 1);
        let x = ctx.symbol("x", 1);
        let t = ctx.bool_const(true);
        let f = ctx.bool_const(false);
        let id = ctx.ite(c, t, f);
        let inv = ctx.ite(c, f, t);
        let orr = ctx.ite(c, t, x);
        let andd = ctx.ite(c, x, f);
        let mut ts = TransitionSystem::new("gates");
        ts.add_signal("id", id);
        ts.add_signal("inv", inv);
        ts.add_signal("or", orr);
        ts.add_signal("and", andd);
        let mut roots = vec![];
        let _ = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(ts.find_signal("id").unwrap(), ctx.find_symbol("c").unwrap());
        let c2 = ctx.find_symbol("c").unwrap();
        let x2 = ctx.find_symbol("x").unwrap();
        let not_c = ctx.not(c2);
        assert_eq!(ts.find_signal("inv").unwrap(), not_c);
        let or_cx = ctx.or(c2, x2);
        assert_eq!(ts.find_signal("or").unwrap(), or_cx);
        let and_cx = ctx.and(c2, x2);
        assert_eq!(ts.find_signal("and").unwrap(), and_cx);
    }

    #[test]
    fn stuck_register_cascade_collapses() {
        // z is stuck at 3; y = z + 1 is therefore stuck at 4; x follows y.
        let mut ctx = Context::new();
        let z = ctx.symbol("z", 8);
        let y = ctx.symbol("y", 8);
        let x = ctx.symbol("x", 8);
        let three = ctx.constant(3, 8);
        let four = ctx.constant(4, 8);
        let one = ctx.constant(1, 8);
        let z_next = z; // holds its reset value forever
        let y_next = ctx.add(z, one);
        let mut ts = TransitionSystem::new("stuck");
        ts.add_state(z, Some(three), z_next);
        ts.add_state(y, Some(four), y_next);
        ts.add_state(x, Some(four), y);
        ts.add_signal("x", x);
        let prop = ctx.eq(x, four);
        let mut roots = vec![prop];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(stats.stuck_states, 3, "whole cascade collapses: {stats:?}");
        assert_eq!(ts.states().len(), 0);
        assert!(
            ctx.const_value(roots[0]).unwrap().to_bool(),
            "property folds to true once x is known constant"
        );
    }

    #[test]
    fn coi_drops_unobserved_state_only() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let dead = ctx.symbol("dead", 16);
        let one4 = ctx.constant(1, 4);
        let one16 = ctx.constant(1, 16);
        let a_next = ctx.add(a, one4);
        let dead_next = ctx.mul(dead, one16);
        let dn = ctx.add(dead_next, one16);
        let mut ts = TransitionSystem::new("coi");
        ts.add_state(a, None, a_next);
        ts.add_state(dead, None, dn);
        ts.add_signal("a", a);
        let five = ctx.constant(5, 4);
        let prop = ctx.ult(a, five);
        let mut roots = vec![prop];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(stats.coi_dropped_states, 1, "{stats:?}");
        assert_eq!(ts.states().len(), 1);
        assert!(ts.find_signal("a").is_some());
    }

    #[test]
    fn coi_keeps_constraint_support() {
        // The constraint mentions `g`, so `g` must survive even though no
        // target or signal observes it.
        let mut ctx = Context::new();
        let g = ctx.symbol("g", 4);
        let one = ctx.constant(1, 4);
        let g_next = ctx.add(g, one);
        let ten = ctx.constant(10, 4);
        let cons = ctx.ult(g, ten);
        let mut ts = TransitionSystem::new("cons");
        ts.add_state(g, None, g_next);
        ts.add_constraint(cons);
        let mut roots = vec![];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(stats.coi_dropped_states, 0);
        assert_eq!(ts.states().len(), 1);
        assert_eq!(ts.constraints().len(), 1);
    }

    #[test]
    fn rebalance_cuts_depth() {
        let mut ctx = Context::new();
        let syms: Vec<ExprRef> = (0..8).map(|i| ctx.symbol(&format!("s{i}"), 8)).collect();
        let mut chain = syms[0];
        for &s in &syms[1..] {
            chain = ctx.add(chain, s);
        }
        fn depth(ctx: &Context, e: ExprRef) -> usize {
            match *ctx.expr(e) {
                Expr::Binary(_, a, b) => 1 + depth(ctx, a).max(depth(ctx, b)),
                Expr::Unary(_, a) => 1 + depth(ctx, a),
                _ => 0,
            }
        }
        assert_eq!(depth(&ctx, chain), 7, "linear comb before");
        let mut ts = TransitionSystem::new("chain");
        ts.add_signal("sum", chain);
        let mut roots = vec![];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.chains_rebalanced >= 1, "{stats:?}");
        let sum = ts.find_signal("sum").unwrap();
        assert_eq!(depth(&ctx, sum), 3, "balanced tree after: ceil(log2 8)");
        // Semantics preserved under a concrete environment.
        let mut env = Env::new();
        for (i, s) in syms.iter().enumerate() {
            // Original symbols are gone after sweep; bind by name.
            let _ = s;
            let sym = ctx.find_symbol(&format!("s{i}")).unwrap();
            env.insert(sym, BitVecValue::from_u64(i as u64 + 1, 8));
        }
        assert_eq!(evaluate(&ctx, &env, sum).to_u64(), Some(36));
    }

    #[test]
    fn sweep_compacts_and_drops_true_constraints() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        // Unreachable garbage.
        let g1 = ctx.mul(a, a);
        let _g2 = ctx.add(g1, a);
        let t = ctx.bool_const(true);
        let mut ts = TransitionSystem::new("sweep");
        ts.add_input(a);
        ts.add_signal("a", a);
        ts.add_constraint(t);
        let before = ctx.num_nodes();
        let mut roots = vec![];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.nodes_after < before, "garbage swept: {stats:?}");
        assert_eq!(stats.constraints_dropped, 1);
        assert!(ts.constraints().is_empty());
        assert!(ts.find_signal("a").is_some());
    }

    #[test]
    fn false_constraint_is_kept() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let f = ctx.bool_const(false);
        let mut ts = TransitionSystem::new("vacuous");
        ts.add_input(a);
        ts.add_constraint(f);
        let mut roots = vec![];
        let _ = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(ts.constraints().len(), 1, "false constraint preserves vacuity");
    }

    #[test]
    fn pipeline_reaches_fixpoint_within_bound() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let one = ctx.constant(1, 8);
        let next = ctx.add(a, one);
        let zero = ctx.constant(0, 8);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(a, Some(zero), next);
        ts.add_signal("a", a);
        let mut roots = vec![];
        let stats = run_full(&mut ctx, &mut ts, &mut roots);
        assert!(stats.rounds <= OptConfig::default().max_rounds);
        // Running again is a no-op: already at fixpoint.
        let n = ctx.num_nodes();
        let stats2 = run_full(&mut ctx, &mut ts, &mut roots);
        assert_eq!(stats2.nodes_after, n);
        assert_eq!(stats2.rewrites, 0);
    }

    #[test]
    fn stats_summary_mentions_counts() {
        let stats = OptStats {
            level: OptLevel::Full,
            rounds: 2,
            nodes_before: 100,
            nodes_after: 60,
            rewrites: 5,
            ..OptStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("100→60"));
        assert!(s.contains("rewrites=5"));
        assert_eq!(stats.nodes_removed(), 40);
    }

    #[test]
    fn salts_are_distinct() {
        assert_eq!(OptLevel::None.salt(), 0);
        let salts = [OptLevel::Basic.salt(), OptLevel::Full.salt(), OptLevel::SatSweep.salt()];
        for (i, a) in salts.iter().enumerate() {
            assert_ne!(*a, 0);
            for b in &salts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
