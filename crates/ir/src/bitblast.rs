//! Bit-blasting: lowering word-level expressions to CNF.
//!
//! [`BitBlaster`] owns a [`CnfBuilder`] (and thus a SAT solver) and converts
//! [`ExprRef`]s into little-endian vectors of literals. A [`LitEnv`] holds
//! the symbol bindings and the structural cache for one *instance* of the
//! expressions — the model checker keeps one `LitEnv` per unrolled frame
//! over a single shared solver.

use crate::expr::{BinaryOp, Context, Expr, ExprRef, UnaryOp};
use crate::value::BitVecValue;
use genfv_sat::{CnfBuilder, Lit, SolveResult, Solver};
use std::collections::HashMap;

/// Per-instance binding of expressions to literal vectors.
///
/// Binding the same `Context` through two different `LitEnv`s yields two
/// independent copies of the logic (used for unrolling a transition system
/// over time).
#[derive(Clone, Debug, Default)]
pub struct LitEnv {
    map: HashMap<ExprRef, Vec<Lit>>,
}

impl LitEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        LitEnv::default()
    }

    /// Binds a symbol (or any expression) to the given literals.
    ///
    /// # Panics
    /// Panics if `e` is already bound to different literals.
    pub fn bind(&mut self, e: ExprRef, lits: Vec<Lit>) {
        if let Some(prev) = self.map.get(&e) {
            assert_eq!(prev, &lits, "conflicting rebinding of {e:?}");
            return;
        }
        self.map.insert(e, lits);
    }

    /// Looks up the literals bound to `e`, if any.
    pub fn lookup(&self, e: ExprRef) -> Option<&[Lit]> {
        self.map.get(&e).map(|v| v.as_slice())
    }
}

/// Lowers expressions over a [`Context`] into a CNF formula.
///
/// ```
/// use genfv_ir::{Context, BitBlaster, LitEnv};
///
/// let mut ctx = Context::new();
/// let a = ctx.symbol("a", 4);
/// let b = ctx.symbol("b", 4);
/// let eq = ctx.eq(a, b);
/// let mut bb = BitBlaster::new();
/// let mut env = LitEnv::new();
/// let eq_lits = bb.blast(&ctx, &mut env, eq);
/// bb.assert_lit(eq_lits[0]);
/// assert!(bb.solver_mut().solve().is_sat());
/// ```
#[derive(Debug, Default)]
pub struct BitBlaster {
    builder: CnfBuilder,
}

impl BitBlaster {
    /// Creates a blaster with a fresh solver.
    pub fn new() -> Self {
        BitBlaster { builder: CnfBuilder::new() }
    }

    /// Allocates `width` fresh unconstrained literals (LSB first).
    pub fn fresh_lits(&mut self, width: u32) -> Vec<Lit> {
        (0..width).map(|_| self.builder.fresh()).collect()
    }

    /// Asserts a single literal at the top level.
    pub fn assert_lit(&mut self, l: Lit) {
        self.builder.assert_lit(l);
    }

    /// Asserts that two literal vectors are equal bit-for-bit.
    pub fn assert_equal(&mut self, a: &[Lit], b: &[Lit]) {
        assert_eq!(a.len(), b.len(), "assert_equal width mismatch");
        for (&x, &y) in a.iter().zip(b) {
            let eq = self.builder.iff(x, y);
            self.builder.assert_lit(eq);
        }
    }

    /// The constant-true literal.
    pub fn true_lit(&self) -> Lit {
        self.builder.true_lit()
    }

    /// The constant-false literal.
    pub fn false_lit(&self) -> Lit {
        self.builder.false_lit()
    }

    /// Access to the underlying solver (for `solve`, models, budgets).
    pub fn solver_mut(&mut self) -> &mut Solver {
        self.builder.solver_mut()
    }

    /// Shared access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        self.builder.solver()
    }

    /// Convenience: solve under assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.builder.solver_mut().solve_with_assumptions(assumptions)
    }

    /// Reads the value of a blasted vector from the last model; unassigned
    /// bits default to 0.
    pub fn read_model_value(&self, lits: &[Lit]) -> BitVecValue {
        let bits: Vec<bool> =
            lits.iter().map(|&l| self.builder.solver().value(l).unwrap_or(false)).collect();
        BitVecValue::from_bits_lsb_first(&bits)
    }

    /// Lowers `e` under `env`, creating fresh literals for unbound symbols
    /// (recorded in `env` so later references share them).
    pub fn blast(&mut self, ctx: &Context, env: &mut LitEnv, e: ExprRef) -> Vec<Lit> {
        if let Some(lits) = env.map.get(&e) {
            return lits.clone();
        }
        let lits: Vec<Lit> = match ctx.expr(e) {
            Expr::Const(v) => (0..v.width()).map(|i| self.builder.constant(v.bit(i))).collect(),
            Expr::Symbol { width, .. } => self.fresh_lits(*width),
            Expr::Unary(op, a) => {
                let la = self.blast(ctx, env, *a);
                match op {
                    UnaryOp::Not => la.iter().map(|&l| !l).collect(),
                    UnaryOp::Neg => {
                        let inverted: Vec<Lit> = la.iter().map(|&l| !l).collect();
                        let one = self.const_lits(&BitVecValue::from_u64(1, la.len() as u32));
                        self.ripple_add(&inverted, &one).0
                    }
                    UnaryOp::RedAnd => vec![self.builder.and_many(la)],
                    UnaryOp::RedOr => vec![self.builder.or_many(la)],
                    UnaryOp::RedXor => {
                        let mut acc = self.builder.false_lit();
                        for l in la {
                            acc = self.builder.xor(acc, l);
                        }
                        vec![acc]
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let la = self.blast(ctx, env, *a);
                let lb = self.blast(ctx, env, *b);
                match op {
                    BinaryOp::And => self.zip_gate(&la, &lb, |bld, x, y| bld.and(x, y)),
                    BinaryOp::Or => self.zip_gate(&la, &lb, |bld, x, y| bld.or(x, y)),
                    BinaryOp::Xor => self.zip_gate(&la, &lb, |bld, x, y| bld.xor(x, y)),
                    BinaryOp::Add => self.ripple_add(&la, &lb).0,
                    BinaryOp::Sub => {
                        let nb: Vec<Lit> = lb.iter().map(|&l| !l).collect();
                        self.ripple_add_carry(&la, &nb, self.builder.true_lit()).0
                    }
                    BinaryOp::Mul => self.shift_add_mul(&la, &lb),
                    BinaryOp::Udiv => self.divider(&la, &lb).0,
                    BinaryOp::Urem => self.divider(&la, &lb).1,
                    BinaryOp::Eq => vec![self.equal_lit(&la, &lb)],
                    BinaryOp::Ult => vec![self.ult_lit(&la, &lb)],
                    BinaryOp::Ule => {
                        let gt = self.ult_lit(&lb, &la);
                        vec![!gt]
                    }
                    BinaryOp::Slt => {
                        // Flip sign bits, then unsigned compare.
                        let mut fa = la.clone();
                        let mut fb = lb.clone();
                        let last = fa.len() - 1;
                        fa[last] = !fa[last];
                        fb[last] = !fb[last];
                        vec![self.ult_lit(&fa, &fb)]
                    }
                    BinaryOp::Concat => {
                        // a is high, b is low; LSB-first means b then a.
                        let mut out = lb.clone();
                        out.extend_from_slice(&la);
                        out
                    }
                    BinaryOp::Shl => self.barrel_shift(&la, &lb, ShiftDir::Left),
                    BinaryOp::Lshr => self.barrel_shift(&la, &lb, ShiftDir::Right),
                }
            }
            Expr::Ite { cond, tru, fls } => {
                let lc = self.blast(ctx, env, *cond)[0];
                let lt = self.blast(ctx, env, *tru);
                let le = self.blast(ctx, env, *fls);
                lt.iter().zip(&le).map(|(&t, &f)| self.builder.ite(lc, t, f)).collect()
            }
            Expr::Extract { value, hi, lo } => {
                let lv = self.blast(ctx, env, *value);
                lv[*lo as usize..=*hi as usize].to_vec()
            }
        };
        debug_assert_eq!(lits.len() as u32, ctx.width_of(e), "blasted width mismatch");
        env.map.insert(e, lits.clone());
        lits
    }

    // --- gate-level helpers -------------------------------------------------

    fn const_lits(&mut self, v: &BitVecValue) -> Vec<Lit> {
        (0..v.width()).map(|i| self.builder.constant(v.bit(i))).collect()
    }

    fn zip_gate(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        mut gate: impl FnMut(&mut CnfBuilder, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        a.iter().zip(b).map(|(&x, &y)| gate(&mut self.builder, x, y)).collect()
    }

    /// Ripple-carry addition; returns `(sum, carry_out)`.
    fn ripple_add(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        let cin = self.builder.false_lit();
        self.ripple_add_carry(a, b, cin)
    }

    fn ripple_add_carry(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.builder.xor(x, y);
            let s = self.builder.xor(xy, carry);
            // carry' = (x & y) | (carry & (x ^ y))
            let and1 = self.builder.and(x, y);
            let and2 = self.builder.and(carry, xy);
            carry = self.builder.or(and1, and2);
            sum.push(s);
        }
        (sum, carry)
    }

    /// O(n²) shift-and-add multiplier (truncating).
    fn shift_add_mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc: Vec<Lit> = vec![self.builder.false_lit(); w];
        for i in 0..w {
            // partial = (a << i) masked by b[i]
            let mut partial: Vec<Lit> = Vec::with_capacity(w);
            for j in 0..w {
                if j < i {
                    partial.push(self.builder.false_lit());
                } else {
                    let p = self.builder.and(a[j - i], b[i]);
                    partial.push(p);
                }
            }
            acc = self.ripple_add(&acc, &partial).0;
        }
        acc
    }

    /// Restoring-division circuit; returns `(quotient, remainder)` with
    /// the SMT-LIB division-by-zero convention (q = all-ones, r = a).
    fn divider(&mut self, a: &[Lit], d: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let fl = self.builder.false_lit();
        let mut r: Vec<Lit> = vec![fl; w];
        let mut q: Vec<Lit> = vec![fl; w];
        for i in (0..w).rev() {
            // r' = (r << 1) | a[i]
            let mut shifted = Vec::with_capacity(w);
            shifted.push(a[i]);
            shifted.extend_from_slice(&r[..w - 1]);
            // ge = shifted >= d
            let lt = self.ult_lit(&shifted, d);
            let ge = !lt;
            // diff = shifted - d
            let nd: Vec<Lit> = d.iter().map(|&l| !l).collect();
            let tl = self.builder.true_lit();
            let (diff, _) = self.ripple_add_carry(&shifted, &nd, tl);
            r = shifted
                .iter()
                .zip(&diff)
                .map(|(&keep, &sub)| self.builder.ite(ge, sub, keep))
                .collect();
            q[i] = ge;
        }
        // Division by zero: quotient all-ones, remainder = dividend.
        let d_nonzero = self.builder.or_many(d.iter().copied());
        let d_zero = !d_nonzero;
        let tl = self.builder.true_lit();
        let q = q.iter().map(|&l| self.builder.ite(d_zero, tl, l)).collect();
        let r = r.iter().zip(a).map(|(&l, &ai)| self.builder.ite(d_zero, ai, l)).collect();
        (q, r)
    }

    fn equal_lit(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.builder.true_lit();
        for (&x, &y) in a.iter().zip(b) {
            let eq = self.builder.iff(x, y);
            acc = self.builder.and(acc, eq);
        }
        acc
    }

    /// a < b (unsigned): the borrow out of a - b.
    fn ult_lit(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (_, carry) = self.ripple_add_carry(a, &nb, self.builder.true_lit());
        // carry==1 ⇔ a >= b, so a < b ⇔ !carry.
        !carry
    }

    fn barrel_shift(&mut self, a: &[Lit], amount: &[Lit], dir: ShiftDir) -> Vec<Lit> {
        let w = a.len();
        let mut current = a.to_vec();
        let mut overflow = self.builder.false_lit();
        for (s, &bit) in amount.iter().enumerate() {
            let shift = 1usize.checked_shl(s as u32);
            match shift {
                Some(sh) if sh < w => {
                    let shifted: Vec<Lit> = (0..w)
                        .map(|i| match dir {
                            ShiftDir::Left => {
                                if i >= sh {
                                    current[i - sh]
                                } else {
                                    self.builder.false_lit()
                                }
                            }
                            ShiftDir::Right => {
                                if i + sh < w {
                                    current[i + sh]
                                } else {
                                    self.builder.false_lit()
                                }
                            }
                        })
                        .collect();
                    current = current
                        .iter()
                        .zip(&shifted)
                        .map(|(&keep, &shf)| self.builder.ite(bit, shf, keep))
                        .collect();
                }
                _ => {
                    // This amount bit alone shifts everything out.
                    overflow = self.builder.or(overflow, bit);
                }
            }
        }
        let zero = self.builder.false_lit();
        current.iter().map(|&l| self.builder.ite(overflow, zero, l)).collect()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftDir {
    Left,
    Right,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blasts `e`, fixes the symbols to the given values, solves, and reads
    /// back the result vector.
    fn blast_and_eval(
        ctx: &Context,
        bindings: &[(ExprRef, BitVecValue)],
        e: ExprRef,
    ) -> BitVecValue {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lits = bb.blast(ctx, &mut env, e);
        for (sym, val) in bindings {
            let sl = bb.blast(ctx, &mut env, *sym);
            let cl = bb.const_lits(val);
            bb.assert_equal(&sl, &cl);
        }
        assert!(bb.solver_mut().solve().is_sat());
        bb.read_model_value(&lits)
    }

    #[test]
    fn add_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let s = ctx.add(a, b);
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(200, 8)), (b, BitVecValue::from_u64(100, 8))],
            s,
        );
        assert_eq!(got.to_u64(), Some((200u64 + 100) & 0xFF));
    }

    #[test]
    fn mul_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 6);
        let b = ctx.symbol("b", 6);
        let m = ctx.mul(a, b);
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(13, 6)), (b, BitVecValue::from_u64(9, 6))],
            m,
        );
        assert_eq!(got.to_u64(), Some((13u64 * 9) & 0x3F));
    }

    #[test]
    fn comparison_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let cases = [(3u64, 5u64, true), (5, 3, false), (7, 7, false)];
        for (va, vb, expect) in cases {
            let lt = ctx.ult(a, b);
            let got = blast_and_eval(
                &ctx,
                &[(a, BitVecValue::from_u64(va, 4)), (b, BitVecValue::from_u64(vb, 4))],
                lt,
            );
            assert_eq!(got.to_bool(), expect, "{va} < {vb}");
        }
    }

    #[test]
    fn slt_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let lt = ctx.slt(a, b);
        // -1 (0xF) < 0 signed.
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(0xF, 4)), (b, BitVecValue::from_u64(0, 4))],
            lt,
        );
        assert!(got.to_bool());
    }

    #[test]
    fn shift_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let sh = ctx.symbol("sh", 8);
        for (va, vs, expl, expr) in
            [(0b1011u64, 1u64, 0b10110u64, 0b101u64), (0xFF, 8, 0, 0), (0xFF, 200, 0, 0)]
        {
            let l = ctx.shl(a, sh);
            let r = ctx.lshr(a, sh);
            let bindings = [(a, BitVecValue::from_u64(va, 8)), (sh, BitVecValue::from_u64(vs, 8))];
            assert_eq!(blast_and_eval(&ctx, &bindings, l).to_u64(), Some(expl & 0xFF));
            assert_eq!(blast_and_eval(&ctx, &bindings, r).to_u64(), Some(expr));
        }
    }

    #[test]
    fn shared_env_shares_symbols() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let one = ctx.constant(1, 4);
        let inc = ctx.add(a, one);
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let l1 = bb.blast(&ctx, &mut env, inc);
        let l2 = bb.blast(&ctx, &mut env, inc);
        assert_eq!(l1, l2, "cache hit for identical expression");
        // Distinct envs produce distinct literals.
        let mut env2 = LitEnv::new();
        let l3 = bb.blast(&ctx, &mut env2, inc);
        assert_ne!(l1, l3);
    }

    #[test]
    fn unsat_when_constrained_impossible() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let e1 = ctx.ult(a, b);
        let e2 = ctx.ult(b, a);
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let l1 = bb.blast(&ctx, &mut env, e1);
        let l2 = bb.blast(&ctx, &mut env, e2);
        bb.assert_lit(l1[0]);
        bb.assert_lit(l2[0]);
        assert!(bb.solver_mut().solve().is_unsat(), "a<b and b<a cannot both hold");
    }
}
