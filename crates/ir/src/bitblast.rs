//! Bit-blasting: lowering word-level expressions to CNF.
//!
//! [`BitBlaster`] owns a [`CnfBuilder`] (and thus a SAT solver) and converts
//! [`ExprRef`]s into little-endian vectors of literals. A [`LitEnv`] holds
//! the symbol bindings and the structural cache for one *instance* of the
//! expressions — the model checker keeps one `LitEnv` per unrolled frame
//! over a single shared solver.

use crate::encode::{lower_expr, GateEncoder, LowerEnv};
use crate::expr::{Context, ExprRef};
use crate::value::BitVecValue;
use genfv_sat::{CnfBuilder, Lit, SolveResult, Solver};
use std::collections::HashMap;

/// Per-instance binding of expressions to literal vectors.
///
/// Binding the same `Context` through two different `LitEnv`s yields two
/// independent copies of the logic (used for unrolling a transition system
/// over time).
#[derive(Clone, Debug, Default)]
pub struct LitEnv {
    map: HashMap<ExprRef, Vec<Lit>>,
}

impl LitEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        LitEnv::default()
    }

    /// Binds a symbol (or any expression) to the given literals.
    ///
    /// # Panics
    /// Panics if `e` is already bound to different literals.
    pub fn bind(&mut self, e: ExprRef, lits: Vec<Lit>) {
        if let Some(prev) = self.map.get(&e) {
            assert_eq!(prev, &lits, "conflicting rebinding of {e:?}");
            return;
        }
        self.map.insert(e, lits);
    }

    /// Looks up the literals bound to `e`, if any.
    pub fn lookup(&self, e: ExprRef) -> Option<&[Lit]> {
        self.map.get(&e).map(|v| v.as_slice())
    }

    /// Caches a lowering without the rebinding check of [`LitEnv::bind`]
    /// (used by the template engine when materialising pre-encoded cones).
    pub(crate) fn insert(&mut self, e: ExprRef, lits: Vec<Lit>) {
        self.map.insert(e, lits);
    }
}

/// The per-frame direct-Tseitin encoder: [`CnfBuilder`] gates emitted
/// straight into the live solver.
impl GateEncoder for CnfBuilder {
    type L = Lit;

    fn constant(&mut self, v: bool) -> Lit {
        CnfBuilder::constant(self, v)
    }

    fn negate(&mut self, l: Lit) -> Lit {
        !l
    }

    fn and(&mut self, a: Lit, b: Lit) -> Lit {
        CnfBuilder::and(self, a, b)
    }

    fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        CnfBuilder::xor(self, a, b)
    }

    fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        CnfBuilder::ite(self, c, t, e)
    }

    fn or(&mut self, a: Lit, b: Lit) -> Lit {
        CnfBuilder::or(self, a, b)
    }

    fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        CnfBuilder::iff(self, a, b)
    }
}

/// Lowering environment over a [`LitEnv`]: the env map is the memo, and
/// unbound symbols get fresh unconstrained literals (one instance of the
/// logic per env).
struct BlastEnv<'a> {
    env: &'a mut LitEnv,
}

impl LowerEnv<CnfBuilder> for BlastEnv<'_> {
    fn lookup(&mut self, _enc: &mut CnfBuilder, e: ExprRef) -> Option<Vec<Lit>> {
        self.env.map.get(&e).cloned()
    }

    fn record(&mut self, e: ExprRef, lits: &[Lit]) {
        self.env.map.insert(e, lits.to_vec());
    }

    fn symbol(&mut self, enc: &mut CnfBuilder, _e: ExprRef, width: u32) -> Vec<Lit> {
        (0..width).map(|_| enc.fresh()).collect()
    }
}

/// Lowers expressions over a [`Context`] into a CNF formula.
///
/// ```
/// use genfv_ir::{Context, BitBlaster, LitEnv};
///
/// let mut ctx = Context::new();
/// let a = ctx.symbol("a", 4);
/// let b = ctx.symbol("b", 4);
/// let eq = ctx.eq(a, b);
/// let mut bb = BitBlaster::new();
/// let mut env = LitEnv::new();
/// let eq_lits = bb.blast(&ctx, &mut env, eq);
/// bb.assert_lit(eq_lits[0]);
/// assert!(bb.solver_mut().solve().is_sat());
/// ```
#[derive(Debug, Default)]
pub struct BitBlaster {
    builder: CnfBuilder,
}

impl BitBlaster {
    /// Creates a blaster with a fresh solver.
    pub fn new() -> Self {
        BitBlaster { builder: CnfBuilder::new() }
    }

    /// Allocates `width` fresh unconstrained literals (LSB first).
    pub fn fresh_lits(&mut self, width: u32) -> Vec<Lit> {
        (0..width).map(|_| self.builder.fresh()).collect()
    }

    /// Asserts a single literal at the top level.
    pub fn assert_lit(&mut self, l: Lit) {
        self.builder.assert_lit(l);
    }

    /// Asserts that two literal vectors are equal bit-for-bit.
    pub fn assert_equal(&mut self, a: &[Lit], b: &[Lit]) {
        assert_eq!(a.len(), b.len(), "assert_equal width mismatch");
        for (&x, &y) in a.iter().zip(b) {
            let eq = self.builder.iff(x, y);
            self.builder.assert_lit(eq);
        }
    }

    /// The constant-true literal.
    pub fn true_lit(&self) -> Lit {
        self.builder.true_lit()
    }

    /// The constant-false literal.
    pub fn false_lit(&self) -> Lit {
        self.builder.false_lit()
    }

    /// Access to the underlying solver (for `solve`, models, budgets).
    pub fn solver_mut(&mut self) -> &mut Solver {
        self.builder.solver_mut()
    }

    /// Shared access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        self.builder.solver()
    }

    /// Convenience: solve under assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.builder.solver_mut().solve_with_assumptions(assumptions)
    }

    /// Reads the value of a blasted vector from the last model; unassigned
    /// bits default to 0.
    pub fn read_model_value(&self, lits: &[Lit]) -> BitVecValue {
        let bits: Vec<bool> =
            lits.iter().map(|&l| self.builder.solver().value(l).unwrap_or(false)).collect();
        BitVecValue::from_bits_lsb_first(&bits)
    }

    /// Lowers `e` under `env`, creating fresh literals for unbound symbols
    /// (recorded in `env` so later references share them).
    ///
    /// The word→gate translation itself lives in [`crate::encode`] and is
    /// shared with the template blaster.
    pub fn blast(&mut self, ctx: &Context, env: &mut LitEnv, e: ExprRef) -> Vec<Lit> {
        let mut benv = BlastEnv { env };
        lower_expr(ctx, &mut self.builder, &mut benv, e)
    }

    /// Mutable access to the underlying CNF builder (template
    /// materialisation emits fallback gates through it).
    pub(crate) fn builder_mut(&mut self) -> &mut CnfBuilder {
        &mut self.builder
    }

    /// The literal vector of a constant (test helper).
    #[cfg(test)]
    fn const_lits(&mut self, v: &BitVecValue) -> Vec<Lit> {
        crate::encode::const_lits(&mut self.builder, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blasts `e`, fixes the symbols to the given values, solves, and reads
    /// back the result vector.
    fn blast_and_eval(
        ctx: &Context,
        bindings: &[(ExprRef, BitVecValue)],
        e: ExprRef,
    ) -> BitVecValue {
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let lits = bb.blast(ctx, &mut env, e);
        for (sym, val) in bindings {
            let sl = bb.blast(ctx, &mut env, *sym);
            let cl = bb.const_lits(val);
            bb.assert_equal(&sl, &cl);
        }
        assert!(bb.solver_mut().solve().is_sat());
        bb.read_model_value(&lits)
    }

    #[test]
    fn add_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        let s = ctx.add(a, b);
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(200, 8)), (b, BitVecValue::from_u64(100, 8))],
            s,
        );
        assert_eq!(got.to_u64(), Some((200u64 + 100) & 0xFF));
    }

    #[test]
    fn mul_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 6);
        let b = ctx.symbol("b", 6);
        let m = ctx.mul(a, b);
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(13, 6)), (b, BitVecValue::from_u64(9, 6))],
            m,
        );
        assert_eq!(got.to_u64(), Some((13u64 * 9) & 0x3F));
    }

    #[test]
    fn comparison_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let cases = [(3u64, 5u64, true), (5, 3, false), (7, 7, false)];
        for (va, vb, expect) in cases {
            let lt = ctx.ult(a, b);
            let got = blast_and_eval(
                &ctx,
                &[(a, BitVecValue::from_u64(va, 4)), (b, BitVecValue::from_u64(vb, 4))],
                lt,
            );
            assert_eq!(got.to_bool(), expect, "{va} < {vb}");
        }
    }

    #[test]
    fn slt_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let lt = ctx.slt(a, b);
        // -1 (0xF) < 0 signed.
        let got = blast_and_eval(
            &ctx,
            &[(a, BitVecValue::from_u64(0xF, 4)), (b, BitVecValue::from_u64(0, 4))],
            lt,
        );
        assert!(got.to_bool());
    }

    #[test]
    fn shift_blast_matches() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let sh = ctx.symbol("sh", 8);
        for (va, vs, expl, expr) in
            [(0b1011u64, 1u64, 0b10110u64, 0b101u64), (0xFF, 8, 0, 0), (0xFF, 200, 0, 0)]
        {
            let l = ctx.shl(a, sh);
            let r = ctx.lshr(a, sh);
            let bindings = [(a, BitVecValue::from_u64(va, 8)), (sh, BitVecValue::from_u64(vs, 8))];
            assert_eq!(blast_and_eval(&ctx, &bindings, l).to_u64(), Some(expl & 0xFF));
            assert_eq!(blast_and_eval(&ctx, &bindings, r).to_u64(), Some(expr));
        }
    }

    #[test]
    fn shared_env_shares_symbols() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let one = ctx.constant(1, 4);
        let inc = ctx.add(a, one);
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let l1 = bb.blast(&ctx, &mut env, inc);
        let l2 = bb.blast(&ctx, &mut env, inc);
        assert_eq!(l1, l2, "cache hit for identical expression");
        // Distinct envs produce distinct literals.
        let mut env2 = LitEnv::new();
        let l3 = bb.blast(&ctx, &mut env2, inc);
        assert_ne!(l1, l3);
    }

    #[test]
    fn unsat_when_constrained_impossible() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let b = ctx.symbol("b", 4);
        let e1 = ctx.ult(a, b);
        let e2 = ctx.ult(b, a);
        let mut bb = BitBlaster::new();
        let mut env = LitEnv::new();
        let l1 = bb.blast(&ctx, &mut env, e1);
        let l2 = bb.blast(&ctx, &mut env, e2);
        bb.assert_lit(l1[0]);
        bb.assert_lit(l2[0]);
        assert!(bb.solver_mut().solve().is_unsat(), "a<b and b<a cannot both hold");
    }
}
