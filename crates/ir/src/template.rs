//! CNF templates: encode the transition relation **once**, instantiate
//! time frames by literal renaming.
//!
//! [`crate::BitBlaster`] re-walks the whole expression DAG and re-runs
//! Tseitin encoding for every unrolled frame. For a long-lived proof
//! session issuing thousands of queries this is the dominant cost after
//! solver-state reuse: the transition relation is *identical* in every
//! frame, so frames should cost a clause-arena copy with an offset add,
//! not a DAG traversal.
//!
//! A [`Template`] is a one-time blast of a
//! [`TransitionSystem`](crate::TransitionSystem)'s next-state functions,
//! environment constraints, and any extra caller expressions over a
//! private variable space (signal/property cones are *not* stamped per
//! frame — [`Template::materialize`] lowers them on demand in the frames
//! that query them, reusing every registered template sub-cone):
//!
//! ```text
//!   ┌────────────────── template variable space ──────────────────┐
//!   │ X: current-state bits │ I: input bits │ G: internal gates    │
//!   └─────────────────────────────────────────────────────────────┘
//!      0..x (substituted)       x..            ..n   (the window)
//!
//!   clauses naming no X bit  → interior ClauseBlock (offset-stamped)
//!   clauses naming an X bit  → boundary layer (substituted per frame)
//! ```
//!
//! [`Template::stamp`] instantiates one frame: the interior block lands
//! through [`genfv_sat::Solver::load_template`] — a fresh window of
//! solver variables plus a clause-arena copy with a single `2·base`
//! offset add per literal — while the small boundary layer (the first
//! logic layer over state bits) is rewritten per frame, substituting each
//! X-slot literal with the *predecessor frame's* next-state output
//! literal. Frames therefore share state literals exactly like the
//! per-frame DAG walk, with no linking clauses and no indirection
//! variables; a free frame 0 substitutes fresh variables instead.
//!
//! ## Renaming soundness
//!
//! Stamping frame `k+1` applies an injective literal substitution σ to
//! the template: window variables map to fresh, unconstrained solver
//! variables (a bijective renaming — the interior offset add), and each
//! X-slot bit maps to the literal computed for the corresponding
//! next-state bit of frame `k` (or a fresh variable at a free frame 0).
//! The stamped clause set is exactly the template's definition of
//! `x' = f(x, i)` and `c(x, i)` instantiated at σ, so the conjunction of
//! stamped frames is `T(x₀,i₀,x₁) ∧ T(x₁,i₁,x₂) ∧ …` — the same formula
//! the per-frame DAG walk builds, over different-but-bijective variable
//! names. Boundary substitution goes through the simplifying
//! `add_clause`, so constant predecessor bits fold instead of polluting
//! the clause database. The `template_differential` corpus suite in
//! `genfv-designs` pins this equivalence on every observable verdict.
//!
//! ## The simplifying blaster
//!
//! The template blast pays for itself at build time:
//!
//! * **negation-aware structural hash-consing** — gates are canonicalised
//!   (commutative operand ordering, sign normalisation through XOR/ITE
//!   complement edges) and deduplicated, so logic shared between
//!   next-state functions, constraints, and property cones is encoded
//!   once;
//! * **constant folding** — gate constructors fold constants away, so no
//!   clause in the block ever mentions one;
//! * **Plaisted–Greenbaum polarity-aware emission** — gates whose cones
//!   are only ever referenced in one phase (environment constraints,
//!   which frames activate positively) emit only that phase's
//!   implications. Cones that callers may query in either phase
//!   (next-state functions, extra roots) are marked bipolar and emit
//!   the full Tseitin equivalences; only those cones are exposed
//!   through [`Template::output`]/[`Template::materialize`], which keeps
//!   single-phase encodings internal and the public literal API sound.

use crate::bitblast::{BitBlaster, LitEnv};
use crate::encode::{lower_expr, GateEncoder, LowerEnv};
use crate::expr::{Context, ExprRef};
use crate::ts::TransitionSystem;
use genfv_sat::{ClauseBlock, CnfBuilder, Lit, Solver};
use std::collections::HashMap;

/// A literal-or-constant over the template's private variable space.
///
/// Constants are folded out of all clauses at build time; they survive
/// only in *output* vectors (e.g. a next-state bit that is constant under
/// the encoding).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TRef {
    /// A boolean constant.
    Const(bool),
    /// A template-local literal, MiniSat-coded (`2·var + sign`).
    Lit(u32),
}

impl TRef {
    /// The complement.
    #[inline]
    fn flip(self) -> TRef {
        match self {
            TRef::Const(b) => TRef::Const(!b),
            TRef::Lit(c) => TRef::Lit(c ^ 1),
        }
    }
}

/// A hash-consed gate over template literals. Operand codes always name
/// variables created before the gate's own variable.
#[derive(Clone, Copy, Debug)]
enum Gate {
    /// `g ⇔ a ∧ b` with operand codes in ascending order.
    And(u32, u32),
    /// `g ⇔ a ⊕ b` with positive, ascending operand codes (signs are
    /// normalised into the consumer's literal).
    Xor(u32, u32),
    /// `g ⇔ c ? t : e` with positive `c` and `t` (signs normalised).
    Ite {
        /// Positive selector code.
        c: u32,
        /// Positive then-branch code.
        t: u32,
        /// Else-branch code (either sign).
        e: u32,
    },
}

const P_POS: u8 = 1;
const P_NEG: u8 = 2;
const P_BOTH: u8 = P_POS | P_NEG;

/// Phase contribution of a literal occurrence in an emitted clause.
#[inline]
fn occur(code: u32) -> (u32, u8) {
    (code >> 1, if code & 1 == 0 { P_POS } else { P_NEG })
}

/// Build-time counters of the simplifying template blaster.
#[derive(Clone, Copy, Debug, Default)]
pub struct TemplateStats {
    /// Final window size in variables (slots + live gates).
    pub vars: u32,
    /// Clauses in the relocatable block.
    pub clauses: usize,
    /// Gates allocated by the blaster (before liveness compaction).
    pub gates: usize,
    /// Gates dropped because no root references them in any phase.
    pub dead_gates: usize,
    /// Structural hash-consing cache hits.
    pub cache_hits: u64,
    /// Constant/structural folds that avoided allocating a gate.
    pub const_folds: u64,
    /// Clauses skipped by Plaisted–Greenbaum single-phase emission.
    pub pg_clauses_saved: usize,
}

/// The hash-consing, constant-folding gate encoder behind
/// [`Template::build`].
#[derive(Debug, Default)]
struct TemplateEncoder {
    /// Per-variable gate definition; `None` marks a slot (free variable).
    kinds: Vec<Option<Gate>>,
    and_cache: HashMap<(u32, u32), u32>,
    xor_cache: HashMap<(u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    cache_hits: u64,
    const_folds: u64,
}

impl TemplateEncoder {
    fn new_slot(&mut self) -> u32 {
        let v = self.kinds.len() as u32;
        self.kinds.push(None);
        v
    }

    fn new_gate(&mut self, g: Gate) -> u32 {
        let v = self.kinds.len() as u32;
        self.kinds.push(Some(g));
        v
    }
}

impl GateEncoder for TemplateEncoder {
    type L = TRef;

    fn constant(&mut self, v: bool) -> TRef {
        TRef::Const(v)
    }

    fn negate(&mut self, l: TRef) -> TRef {
        l.flip()
    }

    fn and(&mut self, a: TRef, b: TRef) -> TRef {
        match (a, b) {
            (TRef::Const(false), _) | (_, TRef::Const(false)) => {
                self.const_folds += 1;
                TRef::Const(false)
            }
            (TRef::Const(true), x) | (x, TRef::Const(true)) => {
                self.const_folds += 1;
                x
            }
            (TRef::Lit(x), TRef::Lit(y)) => {
                if x == y {
                    self.const_folds += 1;
                    return TRef::Lit(x);
                }
                if x ^ 1 == y {
                    self.const_folds += 1;
                    return TRef::Const(false);
                }
                let key = (x.min(y), x.max(y));
                if let Some(&v) = self.and_cache.get(&key) {
                    self.cache_hits += 1;
                    return TRef::Lit(v << 1);
                }
                let v = self.new_gate(Gate::And(key.0, key.1));
                self.and_cache.insert(key, v);
                TRef::Lit(v << 1)
            }
        }
    }

    fn xor(&mut self, a: TRef, b: TRef) -> TRef {
        match (a, b) {
            (TRef::Const(x), TRef::Const(y)) => {
                self.const_folds += 1;
                TRef::Const(x ^ y)
            }
            (TRef::Const(c), TRef::Lit(l)) | (TRef::Lit(l), TRef::Const(c)) => {
                self.const_folds += 1;
                TRef::Lit(l ^ c as u32)
            }
            (TRef::Lit(x), TRef::Lit(y)) => {
                // xor(σ₁v₁, σ₂v₂) = xor(v₁, v₂) ⊕ σ₁ ⊕ σ₂: pull signs out.
                let sign = (x ^ y) & 1;
                let (vx, vy) = (x & !1, y & !1);
                if vx == vy {
                    self.const_folds += 1;
                    return TRef::Const(sign == 1);
                }
                let key = (vx.min(vy), vx.max(vy));
                let v = match self.xor_cache.get(&key) {
                    Some(&v) => {
                        self.cache_hits += 1;
                        v
                    }
                    None => {
                        let v = self.new_gate(Gate::Xor(key.0, key.1));
                        self.xor_cache.insert(key, v);
                        v
                    }
                };
                TRef::Lit((v << 1) | sign)
            }
        }
    }

    fn ite(&mut self, c: TRef, t: TRef, e: TRef) -> TRef {
        let mut lc = match c {
            TRef::Const(true) => {
                self.const_folds += 1;
                return t;
            }
            TRef::Const(false) => {
                self.const_folds += 1;
                return e;
            }
            TRef::Lit(l) => l,
        };
        if t == e {
            self.const_folds += 1;
            return t;
        }
        let (mut lt, mut le) = match (t, e) {
            (TRef::Const(tv), TRef::Const(_)) => {
                // t ≠ e here, so this is c itself (or its complement).
                self.const_folds += 1;
                return TRef::Lit(lc ^ !tv as u32);
            }
            (TRef::Const(true), TRef::Lit(le)) => {
                self.const_folds += 1;
                return self.or(TRef::Lit(lc), TRef::Lit(le));
            }
            (TRef::Const(false), TRef::Lit(le)) => {
                self.const_folds += 1;
                return self.and(TRef::Lit(lc ^ 1), TRef::Lit(le));
            }
            (TRef::Lit(lt), TRef::Const(true)) => {
                self.const_folds += 1;
                return self.or(TRef::Lit(lc ^ 1), TRef::Lit(lt));
            }
            (TRef::Lit(lt), TRef::Const(false)) => {
                self.const_folds += 1;
                return self.and(TRef::Lit(lc), TRef::Lit(lt));
            }
            (TRef::Lit(lt), TRef::Lit(le)) => (lt, le),
        };
        if lt ^ 1 == le {
            // ite(c, t, ¬t) = c ⇔ t.
            self.const_folds += 1;
            let x = self.xor(TRef::Lit(lc), TRef::Lit(lt));
            return x.flip();
        }
        // Canonicalise: positive selector, positive then-branch.
        if lc & 1 == 1 {
            lc ^= 1;
            std::mem::swap(&mut lt, &mut le);
        }
        let out_neg = lt & 1;
        if out_neg == 1 {
            lt ^= 1;
            le ^= 1;
        }
        let key = (lc, lt, le);
        let v = match self.ite_cache.get(&key) {
            Some(&v) => {
                self.cache_hits += 1;
                v
            }
            None => {
                let v = self.new_gate(Gate::Ite { c: lc, t: lt, e: le });
                self.ite_cache.insert(key, v);
                v
            }
        };
        TRef::Lit((v << 1) | out_neg)
    }
}

/// Lowering environment of the template build: the memo doubles as the
/// registry of encoded cones, and unknown symbols become fresh window
/// slots (instantiated per frame, like the per-frame blaster's fresh
/// literals).
#[derive(Debug, Default)]
struct BuildEnv {
    memo: HashMap<ExprRef, Vec<TRef>>,
    aux_slots: Vec<(ExprRef, u32, u32)>,
}

impl LowerEnv<TemplateEncoder> for BuildEnv {
    fn lookup(&mut self, _enc: &mut TemplateEncoder, e: ExprRef) -> Option<Vec<TRef>> {
        self.memo.get(&e).cloned()
    }

    fn record(&mut self, e: ExprRef, lits: &[TRef]) {
        self.memo.insert(e, lits.to_vec());
    }

    fn symbol(&mut self, enc: &mut TemplateEncoder, e: ExprRef, width: u32) -> Vec<TRef> {
        let start = enc.kinds.len() as u32;
        let lits = (0..width).map(|_| TRef::Lit(enc.new_slot() << 1)).collect();
        self.aux_slots.push((e, start, width));
        lits
    }
}

/// One stamped instance of a template: the solver-variable window of the
/// frame's interior plus the substitution of its current-state slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameStamp {
    /// First solver variable of the interior window.
    base: usize,
    /// Solver literal substituted for each X-slot bit: the predecessor
    /// frame's next-state outputs, or fresh variables for a free frame 0.
    xmap: Vec<Lit>,
}

impl FrameStamp {
    /// First solver variable of the frame's interior window.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The literal substituted for each template X-slot bit.
    pub fn xmap(&self) -> &[Lit] {
        &self.xmap
    }
}

/// A one-time blast of a transition relation into a relocatable clause
/// block; see the [module docs](self) for the architecture.
#[derive(Clone, Debug)]
pub struct Template {
    /// Number of current-state (X) slot bits; template variables `0..x`
    /// are substituted at stamp time, never allocated.
    x_bits: u32,
    /// Clauses free of X slots, over template variables `x..vars`
    /// reindexed to `0..vars-x`: stamped by pure offset add.
    interior: ClauseBlock,
    /// Clauses touching at least one X slot (the first logic layer over
    /// state bits), in full-template codes; added per frame through the
    /// simplifying `add_clause` after substitution.
    boundary: Vec<Vec<Lit>>,
    /// `(symbol, first slot var, width)` per state register (X slots).
    state_slots: Vec<(ExprRef, u32, u32)>,
    /// `(symbol, first slot var, width)` per free input (I slots).
    input_slots: Vec<(ExprRef, u32, u32)>,
    /// Slots of symbols discovered outside the transition system (extra
    /// roots over oracle variables); fresh per frame like inputs.
    aux_slots: Vec<(ExprRef, u32, u32)>,
    /// Next-state output literals, aligned with `ts.states()`.
    next_outputs: Vec<Vec<TRef>>,
    /// Positive-phase constraint literals, aligned with `ts.constraints()`.
    constraints: Vec<TRef>,
    /// Bipolar-complete encoded cones, safe for either-phase use.
    exprs: HashMap<ExprRef, Vec<TRef>>,
    stats: TemplateStats,
}

impl Template {
    /// Blasts `ts`'s next-state functions and environment constraints
    /// into a template. Signal/property cones are not pre-encoded;
    /// [`Template::materialize`] lowers them on demand in the frames
    /// that query them (pass them as extra roots to
    /// [`Template::build_with`] to pre-encode known cones).
    pub fn build(ctx: &Context, ts: &TransitionSystem) -> Template {
        Template::build_with(ctx, ts, &[])
    }

    /// [`Template::build`] plus extra bipolar roots (e.g. property or
    /// candidate-lemma cones known up front).
    pub fn build_with(ctx: &Context, ts: &TransitionSystem, extra: &[ExprRef]) -> Template {
        let mut enc = TemplateEncoder::default();
        let mut env = BuildEnv::default();

        let mut state_slots = Vec::with_capacity(ts.states().len());
        for st in ts.states() {
            let w = ctx.width_of(st.symbol);
            let start = enc.kinds.len() as u32;
            let lits: Vec<TRef> = (0..w).map(|_| TRef::Lit(enc.new_slot() << 1)).collect();
            env.memo.insert(st.symbol, lits);
            state_slots.push((st.symbol, start, w));
        }
        let mut input_slots = Vec::with_capacity(ts.inputs().len());
        for &sym in ts.inputs() {
            let w = ctx.width_of(sym);
            let start = enc.kinds.len() as u32;
            let lits: Vec<TRef> = (0..w).map(|_| TRef::Lit(enc.new_slot() << 1)).collect();
            env.memo.insert(sym, lits);
            input_slots.push((sym, start, w));
        }

        // Roots are the next-state functions (plus any caller-supplied
        // cones): exactly what every frame needs. Signal/property cones
        // are *not* stamped per frame — `materialize` lowers them on
        // demand in the frames that query them, reusing every registered
        // template sub-cone, so unqueried logic never costs clauses.
        let next_outputs: Vec<Vec<TRef>> =
            ts.states().iter().map(|st| lower_expr(ctx, &mut enc, &mut env, st.next)).collect();
        let mut bipolar_roots: Vec<TRef> = next_outputs.iter().flatten().copied().collect();
        for &e in extra {
            bipolar_roots.extend(lower_expr(ctx, &mut enc, &mut env, e));
        }
        let constraints: Vec<TRef> =
            ts.constraints().iter().map(|&c| lower_expr(ctx, &mut enc, &mut env, c)[0]).collect();

        Template::finish(
            enc,
            env,
            state_slots,
            input_slots,
            next_outputs,
            constraints,
            &bipolar_roots,
        )
    }

    /// Builds a template over bare expressions (no transition system):
    /// every free symbol becomes a per-frame slot and every root is
    /// bipolar. The differential property suites use this to pit the
    /// template blaster against the per-frame blaster on random DAGs.
    pub fn for_exprs(ctx: &Context, roots: &[ExprRef]) -> Template {
        let mut enc = TemplateEncoder::default();
        let mut env = BuildEnv::default();
        let mut bipolar_roots = Vec::new();
        for &e in roots {
            bipolar_roots.extend(lower_expr(ctx, &mut enc, &mut env, e));
        }
        Template::finish(enc, env, Vec::new(), Vec::new(), Vec::new(), Vec::new(), &bipolar_roots)
    }

    /// Polarity marking, liveness compaction, and clause emission.
    fn finish(
        enc: TemplateEncoder,
        env: BuildEnv,
        state_slots: Vec<(ExprRef, u32, u32)>,
        input_slots: Vec<(ExprRef, u32, u32)>,
        next_outputs: Vec<Vec<TRef>>,
        constraints: Vec<TRef>,
        bipolar_roots: &[TRef],
    ) -> Template {
        let n = enc.kinds.len();
        let mut phases = vec![0u8; n];

        // --- polarity marking ------------------------------------------
        let mut work: Vec<(u32, u8)> = Vec::new();
        for &r in bipolar_roots {
            if let TRef::Lit(code) = r {
                work.push((code >> 1, P_BOTH));
            }
        }
        for &c in &constraints {
            if let TRef::Lit(code) = c {
                let (v, p) = occur(code);
                work.push((v, p));
            }
        }
        while let Some((v, p)) = work.pop() {
            let add = p & !phases[v as usize];
            if add == 0 {
                continue;
            }
            phases[v as usize] |= add;
            let gate = match enc.kinds[v as usize] {
                Some(g) => g,
                None => continue, // slot: free variable, nothing beneath
            };
            match gate {
                Gate::And(a, b) => {
                    // pos: (¬g ∨ a)(¬g ∨ b) — operands occur as-is;
                    // neg: (g ∨ ¬a ∨ ¬b) — operands occur complemented.
                    if add & P_POS != 0 {
                        let (va, pa) = occur(a);
                        let (vb, pb) = occur(b);
                        work.push((va, pa));
                        work.push((vb, pb));
                    }
                    if add & P_NEG != 0 {
                        let (va, pa) = occur(a ^ 1);
                        let (vb, pb) = occur(b ^ 1);
                        work.push((va, pa));
                        work.push((vb, pb));
                    }
                }
                Gate::Xor(a, b) => {
                    // Either phase's clauses mention both signs of both
                    // operands.
                    work.push((a >> 1, P_BOTH));
                    work.push((b >> 1, P_BOTH));
                }
                Gate::Ite { c, t, e } => {
                    work.push((c >> 1, P_BOTH));
                    if add & P_POS != 0 {
                        let (vt, pt) = occur(t);
                        let (ve, pe) = occur(e);
                        work.push((vt, pt));
                        work.push((ve, pe));
                    }
                    if add & P_NEG != 0 {
                        let (vt, pt) = occur(t ^ 1);
                        let (ve, pe) = occur(e ^ 1);
                        work.push((vt, pt));
                        work.push((ve, pe));
                    }
                }
            }
        }

        // --- liveness compaction ---------------------------------------
        // Slots always survive; gates unreachable from every root are
        // dropped and the remaining variables renumbered densely.
        let mut remap = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut dead_gates = 0usize;
        let mut gates = 0usize;
        for v in 0..n {
            match enc.kinds[v] {
                None => {
                    remap[v] = next;
                    next += 1;
                }
                Some(_) => {
                    gates += 1;
                    if phases[v] != 0 {
                        remap[v] = next;
                        next += 1;
                    } else {
                        dead_gates += 1;
                    }
                }
            }
        }
        let map_code = |code: u32| -> Lit {
            let v = remap[(code >> 1) as usize];
            debug_assert_ne!(v, u32::MAX, "live gate references dead variable");
            Lit::from_code(((v << 1) | (code & 1)) as usize)
        };
        let map_tref = |t: TRef| -> TRef {
            match t {
                TRef::Const(b) => TRef::Const(b),
                TRef::Lit(code) => TRef::Lit(map_code(code).code() as u32),
            }
        };

        // --- clause emission -------------------------------------------
        // State slots are allocated first and always survive compaction,
        // so the final X slots occupy exactly `0..x_bits`. Clauses free of
        // X slots go to the interior block (reindexed past the X prefix,
        // stamped by pure offset add); clauses touching an X slot form the
        // small boundary layer, substituted per frame.
        let x_bits: u32 = state_slots.iter().map(|&(_, _, w)| w).sum();
        let mut interior = ClauseBlock::new(next - x_bits);
        let mut boundary: Vec<Vec<Lit>> = Vec::new();
        let mut pg_saved = 0usize;
        let mut emit = |lits: &[Lit]| {
            if lits.iter().any(|l| (l.code() as u32) < 2 * x_bits) {
                boundary.push(lits.to_vec());
            } else {
                let shifted: Vec<Lit> =
                    lits.iter().map(|l| Lit::from_code(l.code() - 2 * x_bits as usize)).collect();
                interior.push_clause(&shifted);
            }
        };
        for (v, &p) in phases.iter().enumerate() {
            let gate = match enc.kinds[v] {
                Some(g) if p != 0 => g,
                _ => continue,
            };
            let g = map_code((v as u32) << 1);
            match gate {
                Gate::And(a, b) => {
                    let (a, b) = (map_code(a), map_code(b));
                    if p & P_POS != 0 {
                        emit(&[!g, a]);
                        emit(&[!g, b]);
                    } else {
                        pg_saved += 2;
                    }
                    if p & P_NEG != 0 {
                        emit(&[g, !a, !b]);
                    } else {
                        pg_saved += 1;
                    }
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (map_code(a), map_code(b));
                    if p & P_POS != 0 {
                        emit(&[!g, a, b]);
                        emit(&[!g, !a, !b]);
                    } else {
                        pg_saved += 2;
                    }
                    if p & P_NEG != 0 {
                        emit(&[g, !a, b]);
                        emit(&[g, a, !b]);
                    } else {
                        pg_saved += 2;
                    }
                }
                Gate::Ite { c, t, e } => {
                    let (c, t, e) = (map_code(c), map_code(t), map_code(e));
                    if p & P_POS != 0 {
                        emit(&[!g, !c, t]);
                        emit(&[!g, c, e]);
                    } else {
                        pg_saved += 2;
                    }
                    if p & P_NEG != 0 {
                        emit(&[g, !c, !t]);
                        emit(&[g, c, !e]);
                    } else {
                        pg_saved += 2;
                    }
                    if p == P_BOTH {
                        // Propagation-strengthening clauses, matching the
                        // direct blaster's bipolar ITE.
                        emit(&[g, !t, !e]);
                        emit(&[!g, t, e]);
                    }
                }
            }
        }
        interior.shrink_to_fit();
        boundary.shrink_to_fit();

        // --- output registries (final codes) ---------------------------
        let remap_slots = |slots: Vec<(ExprRef, u32, u32)>| -> Vec<(ExprRef, u32, u32)> {
            slots.into_iter().map(|(e, start, w)| (e, remap[start as usize], w)).collect()
        };
        let state_slots = remap_slots(state_slots);
        let input_slots = remap_slots(input_slots);
        let aux_slots = remap_slots(env.aux_slots);
        let next_outputs: Vec<Vec<TRef>> =
            next_outputs.into_iter().map(|v| v.into_iter().map(map_tref).collect()).collect();
        let constraints: Vec<TRef> = constraints.into_iter().map(map_tref).collect();
        // Expose only cones whose every output is a constant, a slot, or
        // a fully bipolar gate: marking both phases is transitive through
        // every gate kind, so output-bipolar implies cone-bipolar and the
        // encoding is a full equivalence, safe for either-phase use.
        let safe = |t: &TRef| -> bool {
            match *t {
                TRef::Const(_) => true,
                TRef::Lit(code) => {
                    let v = (code >> 1) as usize;
                    enc.kinds[v].is_none() || phases[v] == P_BOTH
                }
            }
        };
        let exprs: HashMap<ExprRef, Vec<TRef>> = env
            .memo
            .iter()
            .filter(|(_, outs)| outs.iter().all(safe))
            .map(|(&e, outs)| (e, outs.iter().map(|&t| map_tref(t)).collect()))
            .collect();

        let stats = TemplateStats {
            vars: next,
            clauses: interior.num_clauses() + boundary.len(),
            gates,
            dead_gates,
            cache_hits: enc.cache_hits,
            const_folds: enc.const_folds,
            pg_clauses_saved: pg_saved,
        };
        Template {
            x_bits,
            interior,
            boundary,
            state_slots,
            input_slots,
            aux_slots,
            next_outputs,
            constraints,
            exprs,
            stats,
        }
    }

    /// Build-time counters.
    pub fn stats(&self) -> &TemplateStats {
        &self.stats
    }

    /// Window size in variables (X slots excluded — those are substituted,
    /// not allocated).
    pub fn num_vars(&self) -> u32 {
        self.interior.num_vars()
    }

    /// Number of current-state (X) slot bits substituted at stamp time.
    pub fn x_bits(&self) -> u32 {
        self.x_bits
    }

    /// Clauses per frame (interior block plus boundary layer).
    pub fn num_clauses(&self) -> usize {
        self.interior.num_clauses() + self.boundary.len()
    }

    /// The registered bipolar-safe encoding of `e`, if any.
    pub fn output(&self, e: ExprRef) -> Option<&[TRef]> {
        self.exprs.get(&e).map(|v| v.as_slice())
    }

    /// Instantiates one frame.
    ///
    /// `prev` supplies the predecessor frame's next-state output literals
    /// (aligned with `ts.states()`), substituted for the template's X
    /// slots — the frame then shares its current-state literals with the
    /// predecessor exactly like a DAG-walked unrolling, with no linking
    /// clauses. `None` allocates fresh state variables (a free frame 0).
    ///
    /// The interior block lands through
    /// [`genfv_sat::Solver::load_template`] — a fresh variable window plus
    /// a clause-arena copy with a single per-literal offset add. The
    /// boundary layer (clauses naming an X slot) goes through the
    /// simplifying `add_clause`, so constant predecessor bits fold away.
    pub fn stamp(&self, solver: &mut Solver, prev: Option<&[Vec<Lit>]>) -> FrameStamp {
        let xmap: Vec<Lit> = match prev {
            Some(p) => {
                debug_assert_eq!(p.len(), self.state_slots.len());
                p.iter().flat_map(|bits| bits.iter().copied()).collect()
            }
            None => {
                let base = solver.new_vars(self.x_bits as usize);
                (0..self.x_bits as usize)
                    .map(|i| Lit::pos(genfv_sat::Var::from_index(base + i)))
                    .collect()
            }
        };
        debug_assert_eq!(xmap.len(), self.x_bits as usize);
        let (base, _ok) = solver.load_template(&self.interior);
        let stamp = FrameStamp { base, xmap };
        for clause in &self.boundary {
            let mapped = clause.iter().map(|&l| self.map_lit(&stamp, l));
            solver.add_clause(mapped);
        }
        stamp
    }

    /// Maps a full-template literal code into a stamped frame: X slots go
    /// through the stamp's substitution, everything else by offset add.
    #[inline]
    fn map_lit(&self, stamp: &FrameStamp, l: Lit) -> Lit {
        let code = l.code();
        let split = 2 * self.x_bits as usize;
        if code < split {
            let base = stamp.xmap[code >> 1];
            if code & 1 == 1 {
                !base
            } else {
                base
            }
        } else {
            Lit::from_code(code - split + 2 * stamp.base)
        }
    }

    /// Maps a template literal into a stamped frame. `true_lit` resolves
    /// constants (the solver's constant-true literal).
    pub fn resolve(&self, stamp: &FrameStamp, t: TRef, true_lit: Lit) -> Lit {
        match t {
            TRef::Const(true) => true_lit,
            TRef::Const(false) => !true_lit,
            TRef::Lit(code) => self.map_lit(stamp, Lit::from_code(code as usize)),
        }
    }

    fn slot_lits(&self, stamp: &FrameStamp, start: u32, width: u32) -> Vec<Lit> {
        (0..width)
            .map(|i| self.map_lit(stamp, Lit::from_code(((start + i) << 1) as usize)))
            .collect()
    }

    /// Binds every slot symbol (states, inputs, discovered auxiliaries)
    /// of a stamped frame into `env`, making the frame's [`LitEnv`]
    /// self-sufficient for trace extraction and fallback blasting.
    pub fn bind_frame(&self, stamp: &FrameStamp, env: &mut LitEnv) {
        for &(sym, start, w) in
            self.state_slots.iter().chain(&self.input_slots).chain(&self.aux_slots)
        {
            env.insert(sym, self.slot_lits(stamp, start, w));
        }
    }

    /// The next-state output literals of a stamped frame, aligned with
    /// `ts.states()` — resolved by pure offset arithmetic, no DAG work.
    pub fn next_state_lits(&self, stamp: &FrameStamp, true_lit: Lit) -> Vec<Vec<Lit>> {
        self.next_outputs
            .iter()
            .map(|bits| bits.iter().map(|&t| self.resolve(stamp, t, true_lit)).collect())
            .collect()
    }

    /// The positive-phase literal of constraint `i` in a stamped frame.
    /// Sound only for positive use (assertion or guarded activation);
    /// constraint cones are Plaisted–Greenbaum-encoded.
    pub fn constraint_lit(&self, stamp: &FrameStamp, i: usize, true_lit: Lit) -> Lit {
        self.resolve(stamp, self.constraints[i], true_lit)
    }

    /// Lowers `e` in a stamped frame: template-encoded cones resolve by
    /// offset arithmetic (and seed `env`); anything outside the template
    /// falls back to the per-frame blaster, sharing every template-covered
    /// sub-cone. This is the template-aware path behind the unroller's
    /// `lit_at`/`lits_at`.
    pub fn materialize(
        &self,
        ctx: &Context,
        bb: &mut BitBlaster,
        env: &mut LitEnv,
        stamp: &FrameStamp,
        e: ExprRef,
    ) -> Vec<Lit> {
        let true_lit = bb.true_lit();
        let mut menv = MaterializeEnv { tpl: self, stamp, env, true_lit };
        lower_expr(ctx, bb.builder_mut(), &mut menv, e)
    }
}

/// Lowering environment of [`Template::materialize`]: frame env first,
/// then the template's registered cones, then fresh fallback gates.
struct MaterializeEnv<'a> {
    tpl: &'a Template,
    stamp: &'a FrameStamp,
    env: &'a mut LitEnv,
    true_lit: Lit,
}

impl LowerEnv<CnfBuilder> for MaterializeEnv<'_> {
    fn lookup(&mut self, _enc: &mut CnfBuilder, e: ExprRef) -> Option<Vec<Lit>> {
        if let Some(lits) = self.env.lookup(e) {
            return Some(lits.to_vec());
        }
        if let Some(outs) = self.tpl.exprs.get(&e) {
            let lits: Vec<Lit> =
                outs.iter().map(|&t| self.tpl.resolve(self.stamp, t, self.true_lit)).collect();
            self.env.insert(e, lits.clone());
            return Some(lits);
        }
        None
    }

    fn record(&mut self, e: ExprRef, lits: &[Lit]) {
        self.env.insert(e, lits.to_vec());
    }

    fn symbol(&mut self, enc: &mut CnfBuilder, _e: ExprRef, width: u32) -> Vec<Lit> {
        (0..width).map(|_| enc.fresh()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitblast::BitBlaster;
    use crate::ts::TransitionSystem;

    /// count' = count + 1, init 0, 4 bits, with a published signal.
    fn counter(ctx: &mut Context) -> TransitionSystem {
        let c = ctx.symbol("count", 4);
        let one = ctx.constant(1, 4);
        let zero = ctx.constant(0, 4);
        let next = ctx.add(c, one);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(c, Some(zero), next);
        ts.add_signal("count", c);
        ts
    }

    #[test]
    fn stamped_frames_enforce_the_transition_relation() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let five = ctx.constant(5, 4);
        let six = ctx.constant(6, 4);
        let eq5 = ctx.eq(c, five);
        let eq6 = ctx.eq(c, six);

        let tpl = Template::build(&ctx, &ts);
        let mut bb = BitBlaster::new();
        let t = bb.true_lit();
        let f0 = tpl.stamp(bb.solver_mut(), None);
        let prev = tpl.next_state_lits(&f0, t);
        let f1 = tpl.stamp(bb.solver_mut(), Some(&prev));

        let mut env0 = LitEnv::new();
        let mut env1 = LitEnv::new();
        tpl.bind_frame(&f0, &mut env0);
        tpl.bind_frame(&f1, &mut env1);
        let a = tpl.materialize(&ctx, &mut bb, &mut env0, &f0, eq5)[0];
        let b = tpl.materialize(&ctx, &mut bb, &mut env1, &f1, eq6)[0];
        assert!(bb.solve_with_assumptions(&[a, b]).is_sat());
        assert!(bb.solve_with_assumptions(&[a, !b]).is_unsat());
    }

    #[test]
    fn hash_consing_shares_logic_across_roots() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        // `a - b` and `a < b` are different word-level expressions that
        // lower through the same ripple-borrow chain: the structural
        // cache must encode those gates once.
        let d = ctx.sub(a, b);
        let lt = ctx.ult(a, b);
        let tpl = Template::for_exprs(&ctx, &[d, lt]);
        assert!(tpl.stats().cache_hits > 0, "shared ripple logic must hit the cache");
        // Compared against blasting the two roots independently, the
        // shared template is strictly smaller.
        let solo = Template::for_exprs(&ctx, &[d]);
        let solo_lt = Template::for_exprs(&ctx, &[lt]);
        assert!(
            tpl.num_clauses() < solo.num_clauses() + solo_lt.num_clauses(),
            "hash-consing must beat independent encodings"
        );
    }

    #[test]
    fn pg_emission_saves_clauses_for_constraint_cones() {
        let mut ctx = Context::new();
        let mut ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let x = ctx.symbol("x", 4);
        ts.add_input(x);
        // A constraint whose cone (comparison over an input) is not
        // shared with any bipolar root.
        let lt = ctx.ult(x, c);
        ts.add_constraint(lt);
        let tpl = Template::build(&ctx, &ts);
        assert!(tpl.stats().pg_clauses_saved > 0, "single-phase cones emit one direction");

        // The positive-phase literal still activates the constraint.
        let mut bb = BitBlaster::new();
        let t = bb.true_lit();
        let f0 = tpl.stamp(bb.solver_mut(), None);
        let cl = tpl.constraint_lit(&f0, 0, t);
        let mut env = LitEnv::new();
        tpl.bind_frame(&f0, &mut env);
        // x < count is unsatisfiable when count == 0 and the constraint
        // is activated.
        let zero = ctx.constant(0, 4);
        let is0 = ctx.eq(c, zero);
        let l0 = tpl.materialize(&ctx, &mut bb, &mut env, &f0, is0)[0];
        assert!(bb.solve_with_assumptions(&[cl, l0]).is_unsat());
        assert!(bb.solve_with_assumptions(&[l0]).is_sat());
    }

    #[test]
    fn constant_folding_keeps_blocks_constant_free() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 4);
        let zero = ctx.constant(0, 4);
        let masked = ctx.and(a, zero); // folds to 0 at the expr level
        let b = ctx.symbol("b", 4);
        let or0 = ctx.or(b, zero); // survives expr folding? (identity)
        let tpl = Template::for_exprs(&ctx, &[masked, or0]);
        // `or` with a constant zero folds in the template encoder: the
        // output is the operand itself, no gates needed.
        assert_eq!(tpl.output(or0), tpl.output(b));
        assert_eq!(tpl.output(masked).unwrap().len(), 4);
        assert!(tpl.output(masked).unwrap().iter().all(|t| matches!(t, TRef::Const(false))));
    }

    #[test]
    fn materialize_falls_back_for_unregistered_exprs() {
        let mut ctx = Context::new();
        let ts = counter(&mut ctx);
        let c = ctx.find_symbol("count").unwrap();
        let tpl = Template::build(&ctx, &ts);
        let mut bb = BitBlaster::new();
        let f0 = tpl.stamp(bb.solver_mut(), None);
        let mut env = LitEnv::new();
        tpl.bind_frame(&f0, &mut env);
        // A lemma minted after the template was built: not registered,
        // lowered through the fallback path over the frame's slots.
        let nine = ctx.constant(9, 4);
        let lt9 = ctx.ult(c, nine);
        let l = tpl.materialize(&ctx, &mut bb, &mut env, &f0, lt9);
        assert_eq!(l.len(), 1);
        let eq9 = ctx.eq(c, nine);
        let e9 = tpl.materialize(&ctx, &mut bb, &mut env, &f0, eq9)[0];
        // count == 9 contradicts count < 9.
        assert!(bb.solve_with_assumptions(&[l[0], e9]).is_unsat());
        assert!(bb.solve_with_assumptions(&[l[0]]).is_sat());
    }

    #[test]
    fn dead_gates_are_compacted_out() {
        let mut ctx = Context::new();
        let a = ctx.symbol("a", 8);
        let b = ctx.symbol("b", 8);
        // The divider computes quotient and remainder; rooting only the
        // quotient leaves remainder-only gates dead.
        let q = ctx.udiv(a, b);
        let tpl = Template::for_exprs(&ctx, &[q]);
        assert!(tpl.stats().dead_gates > 0, "unreferenced gates must be dropped");
        assert!((tpl.stats().vars as usize) < tpl.stats().gates + 16);
    }
}
