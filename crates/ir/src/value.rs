//! Arbitrary-width bitvector values.
//!
//! [`BitVecValue`] is the concrete datatype used by the simulator, the
//! counterexample traces, and constant folding. Semantics follow Verilog /
//! SMT-LIB `BitVec`: fixed width, two's-complement arithmetic, logical
//! shifts, truncating multiplication.

use std::fmt;

/// A fixed-width bitvector value.
///
/// Width may be anything from 1 to [`BitVecValue::MAX_WIDTH`] bits; storage
/// is little-endian `u64` words with the unused high bits kept at zero.
///
/// ```
/// use genfv_ir::BitVecValue;
/// let a = BitVecValue::from_u64(40, 8);
/// let b = BitVecValue::from_u64(2, 8);
/// assert_eq!(a.add(&b).to_u64(), Some(42));
/// assert_eq!(format!("{}", a), "8'd40");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVecValue {
    width: u32,
    words: Vec<u64>,
}

const WORD_BITS: u32 = 64;

fn words_for(width: u32) -> usize {
    width.div_ceil(WORD_BITS) as usize
}

impl BitVecValue {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u32 = 1 << 20;

    /// The all-zeros value of the given width.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`BitVecValue::MAX_WIDTH`].
    pub fn zero(width: u32) -> Self {
        assert!((1..=Self::MAX_WIDTH).contains(&width), "invalid bitvector width {width}");
        BitVecValue { width, words: vec![0; words_for(width)] }
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut v = Self::zero(width);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Builds a value from the low bits of `value`, truncated/zero-extended
    /// to `width`.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut v = Self::zero(width);
        v.words[0] = value;
        v.mask_top();
        v
    }

    /// Builds a 1-bit value from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// Builds a value from explicit bits, least-significant first.
    ///
    /// # Panics
    /// Panics if `bits` is empty.
    pub fn from_bits_lsb_first(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "bitvector must have at least one bit");
        let mut v = Self::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set_bit(i as u32, true);
            }
        }
        v
    }

    /// Parses a binary string (`"1010"`, most-significant first).
    ///
    /// Returns `None` on empty input or non-binary characters
    /// (underscores are ignored).
    pub fn from_binary_str(s: &str) -> Option<Self> {
        let digits: Vec<char> = s.chars().filter(|c| *c != '_').collect();
        if digits.is_empty() || !digits.iter().all(|c| *c == '0' || *c == '1') {
            return None;
        }
        let width = digits.len() as u32;
        let mut v = Self::zero(width);
        for (i, c) in digits.iter().rev().enumerate() {
            if *c == '1' {
                v.set_bit(i as u32, true);
            }
        }
        Some(v)
    }

    /// Parses a hexadecimal string (most-significant first) into a value of
    /// width `4 * digits`.
    pub fn from_hex_str(s: &str) -> Option<Self> {
        let digits: Vec<u8> = s
            .chars()
            .filter(|c| *c != '_')
            .map(|c| c.to_digit(16).map(|d| d as u8))
            .collect::<Option<Vec<_>>>()?;
        if digits.is_empty() {
            return None;
        }
        let width = digits.len() as u32 * 4;
        let mut v = Self::zero(width);
        for (i, d) in digits.iter().rev().enumerate() {
            for b in 0..4 {
                if d & (1 << b) != 0 {
                    v.set_bit(i as u32 * 4 + b, true);
                }
            }
        }
        Some(v)
    }

    /// Parses a decimal string into a value of the given width (truncating
    /// modulo 2^width as Verilog does).
    pub fn from_decimal_str(s: &str, width: u32) -> Option<Self> {
        let digits: Vec<u32> =
            s.chars().filter(|c| *c != '_').map(|c| c.to_digit(10)).collect::<Option<Vec<_>>>()?;
        if digits.is_empty() {
            return None;
        }
        let mut v = Self::zero(width);
        let ten = Self::from_u64(10, width);
        for d in digits {
            v = v.mul(&ten).add(&Self::from_u64(d as u64, width));
        }
        Some(v)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The value of bit `i` (LSB = 0).
    ///
    /// # Panics
    /// Panics if `i >= width`.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.words[(i / WORD_BITS) as usize] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let w = (i / WORD_BITS) as usize;
        let b = i % WORD_BITS;
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Converts to `u64` if the width is at most 64 bits, or if all higher
    /// bits are zero.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words[1..].iter().all(|&w| w == 0) {
            Some(self.words[0])
        } else {
            None
        }
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether every bit is one.
    pub fn is_ones(&self) -> bool {
        *self == Self::ones(self.width)
    }

    /// Interprets a 1-bit value as a boolean; wider values are "true" when
    /// non-zero (Verilog truthiness).
    pub fn to_bool(&self) -> bool {
        !self.is_zero()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn mask_top(&mut self) {
        let rem = self.width % WORD_BITS;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    fn assert_same_width(&self, rhs: &Self, op: &str) {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch in {op}: {} vs {}",
            self.width, rhs.width
        );
    }

    // --- bitwise -----------------------------------------------------

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_top();
        out
    }

    /// Bitwise AND. # Panics Panics on width mismatch.
    pub fn and(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "and");
        let mut out = self.clone();
        for (w, r) in out.words.iter_mut().zip(&rhs.words) {
            *w &= r;
        }
        out
    }

    /// Bitwise OR. # Panics Panics on width mismatch.
    pub fn or(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "or");
        let mut out = self.clone();
        for (w, r) in out.words.iter_mut().zip(&rhs.words) {
            *w |= r;
        }
        out
    }

    /// Bitwise XOR. # Panics Panics on width mismatch.
    pub fn xor(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "xor");
        let mut out = self.clone();
        for (w, r) in out.words.iter_mut().zip(&rhs.words) {
            *w ^= r;
        }
        out
    }

    // --- arithmetic ----------------------------------------------------

    /// Modular addition. # Panics Panics on width mismatch.
    pub fn add(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "add");
        let mut out = Self::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.words.len() {
            let (s1, c1) = self.words[i].overflowing_add(rhs.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Modular subtraction. # Panics Panics on width mismatch.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.negate())
    }

    /// Two's-complement negation.
    pub fn negate(&self) -> Self {
        let one = Self::from_u64(1, self.width);
        self.not().add(&one)
    }

    /// Truncating multiplication. # Panics Panics on width mismatch.
    pub fn mul(&self, rhs: &Self) -> Self {
        self.assert_same_width(rhs, "mul");
        let n = self.words.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..(n - i) {
                let idx = i + j;
                let prod =
                    (self.words[i] as u128) * (rhs.words[j] as u128) + (acc[idx] as u128) + carry;
                acc[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        let mut out = Self::zero(self.width);
        out.words.copy_from_slice(&acc);
        out.mask_top();
        out
    }

    /// Unsigned division and remainder in one pass (restoring long
    /// division). Follows the SMT-LIB convention for division by zero:
    /// `x / 0 = all-ones`, `x % 0 = x`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn udivrem(&self, rhs: &Self) -> (Self, Self) {
        self.assert_same_width(rhs, "udiv");
        if rhs.is_zero() {
            return (Self::ones(self.width), self.clone());
        }
        let mut q = Self::zero(self.width);
        let mut r = Self::zero(self.width);
        for i in (0..self.width).rev() {
            r = r.shl_const(1);
            r.set_bit(0, self.bit(i));
            if rhs.ule(&r) {
                r = r.sub(rhs);
                q.set_bit(i, true);
            }
        }
        (q, r)
    }

    /// Unsigned division (see [`BitVecValue::udivrem`] for the zero
    /// convention). # Panics Panics on width mismatch.
    pub fn udiv(&self, rhs: &Self) -> Self {
        self.udivrem(rhs).0
    }

    /// Unsigned remainder (see [`BitVecValue::udivrem`]). # Panics Panics
    /// on width mismatch.
    pub fn urem(&self, rhs: &Self) -> Self {
        self.udivrem(rhs).1
    }

    // --- shifts ---------------------------------------------------------

    /// Logical left shift by a constant amount (zeros shifted in); shifts of
    /// `width` or more produce zero.
    pub fn shl_const(&self, amount: u32) -> Self {
        let mut out = Self::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let word_shift = (amount / WORD_BITS) as usize;
        let bit_shift = amount % WORD_BITS;
        for i in (0..self.words.len()).rev() {
            if i >= word_shift {
                let mut w = self.words[i - word_shift] << bit_shift;
                if bit_shift > 0 && i > word_shift {
                    w |= self.words[i - word_shift - 1] >> (WORD_BITS - bit_shift);
                }
                out.words[i] = w;
            }
        }
        out.mask_top();
        out
    }

    /// Logical right shift by a constant amount.
    pub fn lshr_const(&self, amount: u32) -> Self {
        let mut out = Self::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let word_shift = (amount / WORD_BITS) as usize;
        let bit_shift = amount % WORD_BITS;
        for i in 0..self.words.len() {
            if i + word_shift < self.words.len() {
                let mut w = self.words[i + word_shift] >> bit_shift;
                if bit_shift > 0 && i + word_shift + 1 < self.words.len() {
                    w |= self.words[i + word_shift + 1] << (WORD_BITS - bit_shift);
                }
                out.words[i] = w;
            }
        }
        out
    }

    /// Logical left shift where the amount is itself a bitvector (Verilog
    /// `<<`). # Panics Panics on width mismatch.
    pub fn shl(&self, amount: &Self) -> Self {
        match amount.to_u64() {
            Some(a) if a < self.width as u64 => self.shl_const(a as u32),
            _ => Self::zero(self.width),
        }
    }

    /// Logical right shift with a bitvector amount (Verilog `>>`).
    pub fn lshr(&self, amount: &Self) -> Self {
        match amount.to_u64() {
            Some(a) if a < self.width as u64 => self.lshr_const(a as u32),
            _ => Self::zero(self.width),
        }
    }

    // --- comparisons -----------------------------------------------------

    /// Unsigned less-than. # Panics Panics on width mismatch.
    pub fn ult(&self, rhs: &Self) -> bool {
        self.assert_same_width(rhs, "ult");
        for i in (0..self.words.len()).rev() {
            if self.words[i] != rhs.words[i] {
                return self.words[i] < rhs.words[i];
            }
        }
        false
    }

    /// Unsigned less-or-equal. # Panics Panics on width mismatch.
    pub fn ule(&self, rhs: &Self) -> bool {
        !rhs.ult(self)
    }

    /// Signed less-than (two's complement). # Panics Panics on width mismatch.
    pub fn slt(&self, rhs: &Self) -> bool {
        self.assert_same_width(rhs, "slt");
        let sa = self.bit(self.width - 1);
        let sb = rhs.bit(rhs.width - 1);
        match (sa, sb) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(rhs),
        }
    }

    // --- structure ------------------------------------------------------

    /// Concatenation: `self` becomes the high bits, `low` the low bits
    /// (Verilog `{self, low}`).
    pub fn concat(&self, low: &Self) -> Self {
        let width = self.width + low.width;
        let mut out = Self::zero(width);
        for i in 0..low.width {
            if low.bit(i) {
                out.set_bit(i, true);
            }
        }
        for i in 0..self.width {
            if self.bit(i) {
                out.set_bit(low.width + i, true);
            }
        }
        out
    }

    /// Bit-slice `[hi:lo]`, inclusive on both ends.
    ///
    /// # Panics
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn extract(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo && hi < self.width, "bad extract [{hi}:{lo}] on width {}", self.width);
        let mut out = Self::zero(hi - lo + 1);
        for i in lo..=hi {
            if self.bit(i) {
                out.set_bit(i - lo, true);
            }
        }
        out
    }

    /// Zero-extends to `width` (no-op if already that wide).
    ///
    /// # Panics
    /// Panics if `width < self.width()`.
    pub fn zext(&self, width: u32) -> Self {
        assert!(width >= self.width, "zext target narrower than value");
        let mut out = Self::zero(width);
        for (i, w) in self.words.iter().enumerate() {
            out.words[i] = *w;
        }
        out
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    /// Panics if `width < self.width()`.
    pub fn sext(&self, width: u32) -> Self {
        assert!(width >= self.width, "sext target narrower than value");
        let mut out = self.zext(width);
        if self.bit(self.width - 1) {
            for i in self.width..width {
                out.set_bit(i, true);
            }
        }
        out
    }

    // --- reductions -------------------------------------------------------

    /// AND of all bits (Verilog `&x`).
    pub fn red_and(&self) -> bool {
        self.is_ones()
    }

    /// OR of all bits (Verilog `|x`).
    pub fn red_or(&self) -> bool {
        !self.is_zero()
    }

    /// XOR of all bits (Verilog `^x`).
    pub fn red_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Renders as a binary string, most-significant bit first.
    pub fn to_binary_string(&self) -> String {
        (0..self.width).rev().map(|i| if self.bit(i) { '1' } else { '0' }).collect()
    }

    /// Renders as a hex string (width padded up to a multiple of 4).
    pub fn to_hex_string(&self) -> String {
        let digits = self.width.div_ceil(4);
        let mut s = String::with_capacity(digits as usize);
        for d in (0..digits).rev() {
            let mut nibble = 0u8;
            for b in 0..4 {
                let i = d * 4 + b;
                if i < self.width && self.bit(i) {
                    nibble |= 1 << b;
                }
            }
            s.push(char::from_digit(nibble as u32, 16).expect("nibble"));
        }
        s
    }
}

impl fmt::Display for BitVecValue {
    /// Verilog-style literal: `8'd42` for narrow values, hex for wide ones.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_u64() {
            Some(v) if self.width <= 64 => write!(f, "{}'d{}", self.width, v),
            _ => write!(f, "{}'h{}", self.width, self.to_hex_string()),
        }
    }
}

impl fmt::Debug for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVecValue({self})")
    }
}

impl fmt::Binary for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_binary_string())
    }
}

impl fmt::LowerHex for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex_string())
    }
}

impl From<bool> for BitVecValue {
    fn from(b: bool) -> Self {
        BitVecValue::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_width() {
        let v = BitVecValue::from_u64(0xAB, 8);
        assert_eq!(v.width(), 8);
        assert_eq!(v.to_u64(), Some(0xAB));
        assert!(BitVecValue::zero(1).is_zero());
        assert!(BitVecValue::ones(9).is_ones());
    }

    #[test]
    fn truncation_on_from_u64() {
        let v = BitVecValue::from_u64(0x1FF, 8);
        assert_eq!(v.to_u64(), Some(0xFF));
    }

    #[test]
    #[should_panic(expected = "invalid bitvector width")]
    fn zero_width_rejected() {
        let _ = BitVecValue::zero(0);
    }

    #[test]
    fn wide_values_cross_word_boundary() {
        let v = BitVecValue::ones(100);
        assert_eq!(v.count_ones(), 100);
        let w = v.add(&BitVecValue::from_u64(1, 100));
        assert!(w.is_zero(), "all-ones + 1 wraps to zero");
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BitVecValue::from_u64(123, 32);
        let b = BitVecValue::from_u64(456, 32);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a).to_u64(), Some(0));
    }

    #[test]
    fn add_wraps_modulo() {
        let a = BitVecValue::from_u64(0xFF, 8);
        let one = BitVecValue::from_u64(1, 8);
        assert_eq!(a.add(&one).to_u64(), Some(0));
    }

    #[test]
    fn mul_truncates() {
        let a = BitVecValue::from_u64(200, 8);
        let b = BitVecValue::from_u64(3, 8);
        assert_eq!(a.mul(&b).to_u64(), Some((200u64 * 3) & 0xFF));
    }

    #[test]
    fn mul_wide() {
        let a = BitVecValue::from_u64(u64::MAX, 128);
        let b = BitVecValue::from_u64(2, 128);
        let p = a.mul(&b);
        assert_eq!(p.extract(64, 64).to_u64(), Some(1));
        assert_eq!(p.extract(63, 0).to_u64(), Some(u64::MAX - 1));
    }

    #[test]
    fn bitwise_ops() {
        let a = BitVecValue::from_u64(0b1100, 4);
        let b = BitVecValue::from_u64(0b1010, 4);
        assert_eq!(a.and(&b).to_u64(), Some(0b1000));
        assert_eq!(a.or(&b).to_u64(), Some(0b1110));
        assert_eq!(a.xor(&b).to_u64(), Some(0b0110));
        assert_eq!(a.not().to_u64(), Some(0b0011));
    }

    #[test]
    fn shifts_const() {
        let a = BitVecValue::from_u64(0b0110, 4);
        assert_eq!(a.shl_const(1).to_u64(), Some(0b1100));
        assert_eq!(a.shl_const(4).to_u64(), Some(0));
        assert_eq!(a.lshr_const(1).to_u64(), Some(0b0011));
        assert_eq!(a.lshr_const(10).to_u64(), Some(0));
    }

    #[test]
    fn shifts_cross_word() {
        let a = BitVecValue::from_u64(1, 128);
        let s = a.shl_const(100);
        assert!(s.bit(100));
        assert_eq!(s.count_ones(), 1);
        assert_eq!(s.lshr_const(100), a);
    }

    #[test]
    fn variable_shifts() {
        let a = BitVecValue::from_u64(0b11, 8);
        assert_eq!(a.shl(&BitVecValue::from_u64(2, 8)).to_u64(), Some(0b1100));
        assert_eq!(a.shl(&BitVecValue::from_u64(200, 8)).to_u64(), Some(0));
        assert_eq!(a.lshr(&BitVecValue::from_u64(1, 8)).to_u64(), Some(0b1));
    }

    #[test]
    fn comparisons() {
        let a = BitVecValue::from_u64(5, 8);
        let b = BitVecValue::from_u64(7, 8);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        assert!(a.ule(&a));
        // Signed: 0xFF (= -1) < 0x00.
        let minus1 = BitVecValue::from_u64(0xFF, 8);
        let zero = BitVecValue::zero(8);
        assert!(minus1.slt(&zero));
        assert!(!zero.slt(&minus1));
        assert!(zero.ult(&minus1), "unsigned order is reversed");
    }

    #[test]
    fn concat_extract_roundtrip() {
        let hi = BitVecValue::from_u64(0xA, 4);
        let lo = BitVecValue::from_u64(0x5, 4);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 8);
        assert_eq!(c.to_u64(), Some(0xA5));
        assert_eq!(c.extract(7, 4), hi);
        assert_eq!(c.extract(3, 0), lo);
    }

    #[test]
    fn zext_sext() {
        let v = BitVecValue::from_u64(0b1010, 4);
        assert_eq!(v.zext(8).to_u64(), Some(0b0000_1010));
        assert_eq!(v.sext(8).to_u64(), Some(0b1111_1010));
        let pos = BitVecValue::from_u64(0b0010, 4);
        assert_eq!(pos.sext(8).to_u64(), Some(0b0000_0010));
    }

    #[test]
    fn reductions() {
        let v = BitVecValue::from_u64(0b1011, 4);
        assert!(!v.red_and());
        assert!(v.red_or());
        assert!(v.red_xor());
        assert!(BitVecValue::ones(4).red_and());
        assert!(!BitVecValue::zero(4).red_or());
        assert!(!BitVecValue::from_u64(0b0011, 4).red_xor());
    }

    #[test]
    fn string_parsing() {
        assert_eq!(BitVecValue::from_binary_str("1010").unwrap().to_u64(), Some(10));
        assert_eq!(BitVecValue::from_binary_str("10_10").unwrap().width(), 4);
        assert!(BitVecValue::from_binary_str("102").is_none());
        assert!(BitVecValue::from_binary_str("").is_none());
        assert_eq!(BitVecValue::from_hex_str("ff").unwrap().to_u64(), Some(255));
        assert_eq!(BitVecValue::from_hex_str("ff").unwrap().width(), 8);
        assert_eq!(BitVecValue::from_decimal_str("300", 8).unwrap().to_u64(), Some(300 % 256));
        assert_eq!(
            BitVecValue::from_decimal_str("18446744073709551617", 128)
                .unwrap()
                .extract(64, 64)
                .to_u64(),
            Some(1)
        );
    }

    #[test]
    fn rendering() {
        let v = BitVecValue::from_u64(0xA5, 8);
        assert_eq!(v.to_binary_string(), "10100101");
        assert_eq!(v.to_hex_string(), "a5");
        assert_eq!(format!("{v}"), "8'd165");
        assert_eq!(format!("{v:b}"), "10100101");
        assert_eq!(format!("{v:x}"), "a5");
    }

    #[test]
    fn negate_two_complement() {
        let v = BitVecValue::from_u64(1, 8);
        assert_eq!(v.negate().to_u64(), Some(0xFF));
        assert!(BitVecValue::zero(8).negate().is_zero());
    }

    #[test]
    fn division_and_remainder() {
        let a = BitVecValue::from_u64(100, 8);
        let b = BitVecValue::from_u64(7, 8);
        assert_eq!(a.udiv(&b).to_u64(), Some(14));
        assert_eq!(a.urem(&b).to_u64(), Some(2));
        // Identity: a == q*b + r for b != 0.
        let (q, r) = a.udivrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        // Division by zero: SMT-LIB convention.
        let z = BitVecValue::zero(8);
        assert!(a.udiv(&z).is_ones());
        assert_eq!(a.urem(&z), a);
        // Wide operands.
        let w = BitVecValue::from_u64(u64::MAX, 100).shl_const(10);
        let d = BitVecValue::from_u64(1024, 100);
        assert_eq!(w.udiv(&d).extract(63, 0).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn bit_get_set() {
        let mut v = BitVecValue::zero(70);
        v.set_bit(69, true);
        assert!(v.bit(69));
        v.set_bit(69, false);
        assert!(v.is_zero());
    }
}
