//! A minimal JSON reader/writer used to validate exported Chrome
//! traces without external dependencies (the build environment is
//! offline; there is no serde). Complete enough for RFC 8259 documents
//! produced by this crate and by hand-written bench harnesses.

use std::str::Chars;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array contents, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Append `s` to `out` with JSON string escaping applied.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    chars: Chars<'a>,
    peeked: Option<char>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { chars: src.chars(), peeked: None }
    }

    fn next_ch(&mut self) -> Option<char> {
        self.peeked.take().or_else(|| self.chars.next())
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next_ch();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.next_ch() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?}, got {got:?}")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            match self.next_ch() {
                Some(got) if got == expected => {}
                got => return Err(format!("bad literal: expected {expected:?}, got {got:?}")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                text.push(c);
                self.next_ch();
            } else {
                break;
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next_ch() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next_ch() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .next_ch()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.next_ch();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.next_ch() {
                Some(',') => {}
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected , or ] in array, got {got:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.next_ch();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.next_ch() {
                Some(',') => {}
                Some('}') => return Ok(Json::Obj(fields)),
                got => return Err(format!("expected , or }} in object, got {got:?}")),
            }
        }
    }
}

/// Parse a JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut parser = Parser::new(src);
    let value = parser.value()?;
    parser.skip_ws();
    if let Some(got) = parser.peek() {
        return Err(format!("trailing garbage {got:?}"));
    }
    Ok(value)
}

/// Schema-check result for an exported Chrome trace; see
/// [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeCheck {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Maximum Begin-event nesting depth across all threads (a lone
    /// top-level span has depth 1).
    pub max_depth: usize,
    /// Whether every `B` had a matching same-name `E` on its thread.
    pub balanced: bool,
    /// Deepest nesting observed per span name.
    pub name_depths: Vec<(String, usize)>,
}

impl ChromeCheck {
    /// Deepest nesting depth of any span whose name starts with
    /// `prefix` (e.g. `"solve."` → the solve-call depth).
    pub fn depth_of_prefix(&self, prefix: &str) -> Option<usize> {
        self.name_depths.iter().filter(|(name, _)| name.starts_with(prefix)).map(|&(_, d)| d).max()
    }
}

/// Validate a Chrome `trace_event` JSON document against the subset of
/// the schema this crate emits: an object with a `traceEvents` array
/// whose entries carry a string `name`, a `ph` in `{B, E, i, X, M}`,
/// and numeric `ts` / `pid` / `tid`; per-thread `B`/`E` events must
/// match by name. Returns structural statistics on success.
pub fn validate_chrome_trace(src: &str) -> Result<ChromeCheck, String> {
    let doc = parse_json(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents must be an array")?;
    let mut check = ChromeCheck { balanced: true, events: events.len(), ..Default::default() };
    // Per-tid stacks of open span names.
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?
            .to_string();
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        if !matches!(ph, "B" | "E" | "i" | "X" | "M") {
            return Err(format!("event {i}: unsupported ph {ph:?}"));
        }
        let ts = ev.get("ts").and_then(Json::as_num).ok_or(format!("event {i}: missing ts"))?;
        ev.get("pid").and_then(Json::as_num).ok_or(format!("event {i}: missing pid"))?;
        let tid =
            ev.get("tid").and_then(Json::as_num).ok_or(format!("event {i}: missing tid"))? as u64;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        if ts < last_ts {
            return Err(format!("event {i}: timestamps must be nondecreasing"));
        }
        last_ts = ts;
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                stack.push(name.clone());
                let depth = stack.len();
                check.max_depth = check.max_depth.max(depth);
                match check.name_depths.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, d)) => *d = (*d).max(depth),
                    None => check.name_depths.push((name, depth)),
                }
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                _ => check.balanced = false,
            },
            _ => {}
        }
    }
    if stacks.iter().any(|(_, s)| !s.is_empty()) {
        check.balanced = false;
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_documents() {
        let doc = parse_json(
            r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "q\"\\\nA", "n": null}"#,
        )
        .expect("valid json");
        assert_eq!(doc.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
        assert_eq!(doc.get("b").and_then(|b| b.get("nested")), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\": 1,}").is_err(), "trailing comma rejected");
        assert!(parse_json("[1] x").is_err(), "trailing garbage rejected");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":0}]}"#)
                .is_err(),
            "missing name"
        );
        assert!(
            validate_chrome_trace(
                r#"{"traceEvents":[{"name":"a","ph":"Z","ts":0,"pid":1,"tid":0}]}"#
            )
            .is_err(),
            "bad phase"
        );
        let unbalanced = validate_chrome_trace(
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":0}]}"#,
        )
        .expect("schema-valid");
        assert!(!unbalanced.balanced);
    }

    #[test]
    fn validator_tracks_depth() {
        let check = validate_chrome_trace(
            r#"{"traceEvents":[
                {"name":"job","ph":"B","ts":0,"pid":1,"tid":0},
                {"name":"solve.step","ph":"B","ts":1,"pid":1,"tid":0},
                {"name":"solve.step","ph":"E","ts":2,"pid":1,"tid":0},
                {"name":"job","ph":"E","ts":3,"pid":1,"tid":0}
            ]}"#,
        )
        .expect("valid");
        assert_eq!(check.events, 4);
        assert_eq!(check.max_depth, 2);
        assert!(check.balanced);
        assert_eq!(check.depth_of_prefix("solve."), Some(2));
        assert_eq!(check.depth_of_prefix("opt."), None);
    }
}
