//! Trace sinks: the [`TraceSink`] contract and the three bundled
//! implementations (in-memory ring, Chrome `trace_event` JSON exporter,
//! aggregated human-readable tree).

use std::collections::VecDeque;

use crate::json::escape_json;
use crate::span::{Phase, TraceEvent};

/// Consumer of a drained trace.
///
/// # Contract
///
/// * [`event`](TraceSink::event) is called once per recorded event, in
///   nondecreasing timestamp order; events with equal timestamps from
///   the same thread keep their recording order.
/// * Within one `tid`, `Begin`/`End` events nest properly *unless* the
///   producing handle hit its capacity cap (the producer reports the
///   loss via `Obs::dropped_events`); sinks must tolerate unbalanced
///   input — close still-open spans at `finish` and ignore stray `End`s
///   — rather than panic.
/// * [`finish`](TraceSink::finish) is called exactly once, after the
///   last event. Sinks that build an artifact (JSON, a rendered tree)
///   seal it there; feeding more events afterwards is a caller bug and
///   may be ignored.
///
/// Timestamps are µs for [`crate::ObsConfig::Full`] traces and logical
/// ticks for [`crate::ObsConfig::Deterministic`] ones; sinks that print
/// durations should let callers pick the unit (see
/// [`TreeRenderer::logical`]).
pub trait TraceSink {
    /// Consume one event.
    fn event(&mut self, ev: &TraceEvent);
    /// Seal the sink after the last event.
    fn finish(&mut self) {}
}

/// Bounded in-memory sink keeping the most recent `cap` events; the
/// test workhorse.
pub struct RingSink {
    cap: usize,
    events: VecDeque<TraceEvent>,
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        RingSink { cap: cap.max(1), events: VecDeque::new(), seen: 0 }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Total events ever fed, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, ev: &TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(ev.clone());
        self.seen += 1;
    }
}

/// Chrome `trace_event` JSON exporter (object form:
/// `{"traceEvents": [...]}`), loadable in Perfetto or
/// `chrome://tracing`. Begin events carry the span's `detail` as
/// `args.detail`.
pub struct ChromeTrace {
    out: String,
    first: bool,
    sealed: bool,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTrace {
    /// An empty exporter.
    pub fn new() -> Self {
        ChromeTrace { out: String::from("{\"traceEvents\":[\n"), first: true, sealed: false }
    }

    /// One-shot export of an event slice.
    pub fn export(events: &[TraceEvent]) -> String {
        let mut sink = ChromeTrace::new();
        for ev in events {
            sink.event(ev);
        }
        sink.finish();
        sink.into_json()
    }

    /// The sealed JSON document ([`TraceSink::finish`] is applied if the
    /// caller forgot).
    pub fn into_json(mut self) -> String {
        if !self.sealed {
            self.finish();
        }
        self.out
    }
}

impl TraceSink for ChromeTrace {
    fn event(&mut self, ev: &TraceEvent) {
        if self.sealed {
            return;
        }
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        self.out.push_str("{\"name\":\"");
        escape_json(ev.name, &mut self.out);
        self.out.push_str("\",\"cat\":\"genfv\",\"ph\":\"");
        self.out.push_str(ph);
        self.out.push_str(&format!("\",\"ts\":{},\"pid\":1,\"tid\":{}", ev.ts, ev.tid));
        if ev.phase == Phase::Instant {
            self.out.push_str(",\"s\":\"t\"");
        }
        if let Some(detail) = &ev.detail {
            self.out.push_str(",\"args\":{\"detail\":\"");
            escape_json(detail, &mut self.out);
            self.out.push_str("\"}");
        }
        self.out.push('}');
    }

    fn finish(&mut self) {
        if !self.sealed {
            self.out.push_str("\n]}\n");
            self.sealed = true;
        }
    }
}

/// One aggregated node of the rendered tree.
struct TreeNode {
    name: &'static str,
    count: u64,
    total: u64,
    children: Vec<TreeNode>,
}

impl TreeNode {
    fn new(name: &'static str) -> Self {
        TreeNode { name, count: 0, total: 0, children: Vec::new() }
    }

    fn child(&mut self, name: &'static str) -> &mut TreeNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(TreeNode::new(name));
            self.children.last_mut().expect("just pushed")
        }
    }
}

/// Human-readable aggregated span tree: siblings with the same name
/// collapse into one line with a count and total time, so ten thousand
/// `solve.step` calls render as one row under their parent.
pub struct TreeRenderer {
    root: TreeNode,
    /// Per-tid stack of (path into the tree, begin ts).
    stacks: Vec<(u64, Vec<(usize, u64)>)>,
    /// Print tick counts instead of durations (deterministic traces).
    logical: bool,
    last_ts: u64,
}

impl Default for TreeRenderer {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeRenderer {
    /// A renderer that prints µs-derived durations.
    pub fn new() -> Self {
        TreeRenderer { root: TreeNode::new(""), stacks: Vec::new(), logical: false, last_ts: 0 }
    }

    /// A renderer for logical-clock traces: prints counts only (span
    /// structure without wall times).
    pub fn logical() -> Self {
        TreeRenderer { logical: true, ..Self::new() }
    }

    fn node_at<'a>(root: &'a mut TreeNode, path: &[(usize, u64)]) -> &'a mut TreeNode {
        let mut node = root;
        for &(idx, _) in path {
            node = &mut node.children[idx];
        }
        node
    }

    fn stack_for(&mut self, tid: u64) -> &mut Vec<(usize, u64)> {
        if let Some(i) = self.stacks.iter().position(|(t, _)| *t == tid) {
            &mut self.stacks[i].1
        } else {
            self.stacks.push((tid, Vec::new()));
            &mut self.stacks.last_mut().expect("just pushed").1
        }
    }

    /// Render the aggregated tree (call after [`TraceSink::finish`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for child in &self.root.children {
            self.render_node(child, 0, &mut out);
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }

    fn render_node(&self, node: &TreeNode, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(node.name);
        if node.count != 1 {
            out.push_str(&format!(" ×{}", node.count));
        }
        if !self.logical {
            out.push_str(&format!(" — {}", fmt_us(node.total)));
        }
        out.push('\n');
        for child in &node.children {
            self.render_node(child, depth + 1, out);
        }
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

impl TraceSink for TreeRenderer {
    fn event(&mut self, ev: &TraceEvent) {
        self.last_ts = self.last_ts.max(ev.ts);
        match ev.phase {
            Phase::Begin => {
                // Walk (and extend) the aggregation tree along this
                // thread's open-span path, then push the child index.
                let stack_path: Vec<(usize, u64)> = {
                    let stack = self.stack_for(ev.tid);
                    stack.clone()
                };
                let parent = Self::node_at(&mut self.root, &stack_path);
                let idx = if let Some(i) = parent.children.iter().position(|c| c.name == ev.name) {
                    i
                } else {
                    parent.children.push(TreeNode::new(ev.name));
                    parent.children.len() - 1
                };
                self.stack_for(ev.tid).push((idx, ev.ts));
            }
            Phase::End => {
                let popped = self.stack_for(ev.tid).pop();
                if let Some((_, begin_ts)) = popped {
                    let path: Vec<(usize, u64)> = {
                        let stack = self.stack_for(ev.tid);
                        stack.clone()
                    };
                    let parent = Self::node_at(&mut self.root, &path);
                    if let Some(node) = parent.children.iter_mut().find(|c| c.name == ev.name) {
                        node.count += 1;
                        node.total += ev.ts.saturating_sub(begin_ts);
                    }
                }
            }
            Phase::Instant => {
                let stack_path: Vec<(usize, u64)> = {
                    let stack = self.stack_for(ev.tid);
                    stack.clone()
                };
                let parent = Self::node_at(&mut self.root, &stack_path);
                let node = parent.child(ev.name);
                node.count += 1;
            }
        }
    }

    fn finish(&mut self) {
        // Close any spans left open (capacity-capped traces): credit
        // them with the duration up to the last seen timestamp.
        let last_ts = self.last_ts;
        let stacks = std::mem::take(&mut self.stacks);
        for (_tid, stack) in stacks {
            for depth in (0..stack.len()).rev() {
                let path = &stack[..depth];
                let (idx, begin_ts) = stack[depth];
                let parent = Self::node_at(&mut self.root, path);
                let node = &mut parent.children[idx];
                node.count += 1;
                node.total += last_ts.saturating_sub(begin_ts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::{Obs, ObsConfig};

    fn sample_events() -> Vec<TraceEvent> {
        let obs = Obs::new(ObsConfig::Deterministic);
        {
            let _flow = obs.span_with("flow.flow2", || "fifo \"deep\"".to_string());
            for _ in 0..2 {
                let _prove = obs.span("prove");
                let _solve = obs.span("solve.step");
                obs.instant("glue.shared");
            }
        }
        obs.take_events()
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for ev in sample_events() {
            ring.event(&ev);
        }
        ring.finish();
        assert_eq!(ring.len(), 3);
        assert!(ring.seen() > 3);
        let last = ring.events().last().expect("retained");
        assert_eq!((last.name, last.phase), ("flow.flow2", Phase::End));
    }

    #[test]
    fn chrome_export_is_valid_and_escaped() {
        let json = ChromeTrace::export(&sample_events());
        let check = validate_chrome_trace(&json).expect("exporter must emit valid traces");
        assert_eq!(check.events, sample_events().len());
        assert!(check.balanced);
        assert_eq!(check.max_depth, 3);
        assert_eq!(check.depth_of_prefix("solve."), Some(3));
        assert!(json.contains("fifo \\\"deep\\\""), "details must be JSON-escaped");
    }

    #[test]
    fn tree_renderer_aggregates_siblings() {
        let mut tree = TreeRenderer::logical();
        for ev in sample_events() {
            tree.event(&ev);
        }
        tree.finish();
        let rendered = tree.render();
        assert!(rendered.contains("flow.flow2\n"));
        assert!(rendered.contains("  prove ×2\n"));
        assert!(rendered.contains("    solve.step ×2\n"));
        assert!(rendered.contains("    glue.shared ×2"), "instants nest under open spans");
    }

    #[test]
    fn tree_renderer_tolerates_unbalanced_input() {
        let mut events = sample_events();
        events.retain(|e| e.phase != Phase::End); // drop every End
        let mut tree = TreeRenderer::logical();
        for ev in &events {
            tree.event(ev);
        }
        tree.finish();
        let rendered = tree.render();
        assert!(rendered.contains("flow.flow2"), "open spans close at finish");
    }
}
