//! Monotonic counters and log₂-bucketed histograms, plus Prometheus
//! text-exposition rendering helpers.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::accumulate::Accumulate;

/// Which kind of query a solve call answered. Keys the per-kind latency
/// and effort histograms, and names the solver-level span
/// (`solve.base`, `solve.step`, …).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A base-case (reset-pinned unrolling) query.
    Base,
    /// An induction-step (free-start unrolling) query.
    #[default]
    Step,
    /// A portfolio probe (budgeted solo attempt before racing).
    Probe,
    /// A cube-and-conquer cube solve.
    Cube,
}

impl QueryKind {
    /// All kinds, in label order.
    pub const ALL: [QueryKind; 4] =
        [QueryKind::Base, QueryKind::Step, QueryKind::Probe, QueryKind::Cube];

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Base => "base",
            QueryKind::Step => "step",
            QueryKind::Probe => "probe",
            QueryKind::Cube => "cube",
        }
    }

    /// The span name the solver opens for a solve of this kind.
    pub fn solve_span(self) -> &'static str {
        match self {
            QueryKind::Base => "solve.base",
            QueryKind::Step => "solve.step",
            QueryKind::Probe => "solve.probe",
            QueryKind::Cube => "solve.cube",
        }
    }

    fn idx(self) -> usize {
        match self {
            QueryKind::Base => 0,
            QueryKind::Step => 1,
            QueryKind::Probe => 2,
            QueryKind::Cube => 3,
        }
    }
}

/// Monotonic counters maintained by the metrics registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Completed solve calls.
    Solves,
    /// Conflicts across all solves.
    Conflicts,
    /// Decisions across all solves.
    Decisions,
    /// Propagations across all solves.
    Propagations,
    /// Template frame instantiations (`load_template` calls).
    TemplateLoads,
    /// Clauses stamped in by template loads.
    TemplateClauses,
    /// Portfolio races escalated past the probe.
    Races,
    /// Cube-and-conquer splits taken.
    CubeSplits,
    /// SAT-sweep equivalence queries issued (proved + refuted + budgeted).
    SweepPairs,
    /// SAT-sweep nodes merged into a class representative.
    SweepMerges,
}

impl Counter {
    /// All counters, in exposition order.
    pub const ALL: [Counter; 10] = [
        Counter::Solves,
        Counter::Conflicts,
        Counter::Decisions,
        Counter::Propagations,
        Counter::TemplateLoads,
        Counter::TemplateClauses,
        Counter::Races,
        Counter::CubeSplits,
        Counter::SweepPairs,
        Counter::SweepMerges,
    ];

    /// Prometheus metric name suffix (`genfv_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Solves => "solves",
            Counter::Conflicts => "conflicts",
            Counter::Decisions => "decisions",
            Counter::Propagations => "propagations",
            Counter::TemplateLoads => "template_loads",
            Counter::TemplateClauses => "template_clauses",
            Counter::Races => "portfolio_races",
            Counter::CubeSplits => "cube_splits",
            Counter::SweepPairs => "satsweep_pairs",
            Counter::SweepMerges => "satsweep_merges",
        }
    }

    fn idx(self) -> usize {
        match self {
            Counter::Solves => 0,
            Counter::Conflicts => 1,
            Counter::Decisions => 2,
            Counter::Propagations => 3,
            Counter::TemplateLoads => 4,
            Counter::TemplateClauses => 5,
            Counter::Races => 6,
            Counter::CubeSplits => 7,
            Counter::SweepPairs => 8,
            Counter::SweepMerges => 9,
        }
    }
}

/// Number of log₂ buckets per histogram: bucket 0 holds `v == 0`,
/// bucket `b ≥ 1` holds `2^(b-1) ≤ v < 2^b`; 2⁴⁰ µs ≈ 13 days, ample.
pub const HIST_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed histogram (relaxed atomics; writers never
/// block each other).
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (`u64::MAX` for the last).
pub(crate) fn bucket_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl AtomicHistogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copy out a point-in-time view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data view of a histogram (also usable directly as a
/// single-writer histogram, e.g. the service queue-wait histogram).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (log₂ buckets; see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty histogram with the standard bucket layout.
    pub fn new() -> Self {
        HistogramSnapshot { buckets: vec![0; HIST_BUCKETS], count: 0, sum: 0 }
    }

    /// Record one observation (non-atomic variant).
    pub fn record(&mut self, v: u64) {
        if self.buckets.len() < HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return bucket_bound(b);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }
}

impl Accumulate for HistogramSnapshot {
    fn absorb(&mut self, other: &Self) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The live (atomic) metrics registry owned by an enabled `Obs` handle.
#[derive(Default)]
pub(crate) struct Metrics {
    counters: [AtomicU64; Counter::ALL.len()],
    solve_latency: [AtomicHistogram; QueryKind::ALL.len()],
    solve_conflicts: [AtomicHistogram; QueryKind::ALL.len()],
    learnt_db: AtomicHistogram,
    template_clauses: AtomicHistogram,
}

impl Metrics {
    pub(crate) fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.idx()].fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn record_solve(
        &self,
        kind: QueryKind,
        latency: u64,
        conflicts: u64,
        decisions: u64,
        propagations: u64,
        learnt_db: u64,
    ) {
        self.add(Counter::Solves, 1);
        self.add(Counter::Conflicts, conflicts);
        self.add(Counter::Decisions, decisions);
        self.add(Counter::Propagations, propagations);
        self.solve_latency[kind.idx()].record(latency);
        self.solve_conflicts[kind.idx()].record(conflicts);
        self.learnt_db.record(learnt_db);
    }

    pub(crate) fn record_template_load(&self, clauses: u64) {
        self.add(Counter::TemplateLoads, 1);
        self.add(Counter::TemplateClauses, clauses);
        self.template_clauses.record(clauses);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            solve_latency: std::array::from_fn(|i| self.solve_latency[i].snapshot()),
            solve_conflicts: std::array::from_fn(|i| self.solve_conflicts[i].snapshot()),
            learnt_db: self.learnt_db.snapshot(),
            template_clauses: self.template_clauses.snapshot(),
        }
    }
}

/// A plain-data metrics snapshot; mergeable via [`Accumulate`] so the
/// service can fold per-job snapshots into its lifetime totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed per [`Counter::ALL`].
    pub counters: [u64; Counter::ALL.len()],
    /// Solve latency histograms (µs or ticks), indexed per [`QueryKind::ALL`].
    pub solve_latency: [HistogramSnapshot; QueryKind::ALL.len()],
    /// Solve conflict-delta histograms, indexed per [`QueryKind::ALL`].
    pub solve_conflicts: [HistogramSnapshot; QueryKind::ALL.len()],
    /// Learnt-DB size at solve exit.
    pub learnt_db: HistogramSnapshot,
    /// Clauses per template load.
    pub template_clauses: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Read one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// Latency histogram for one query kind.
    pub fn latency(&self, kind: QueryKind) -> &HistogramSnapshot {
        &self.solve_latency[kind.idx()]
    }

    /// Conflict-delta histogram for one query kind.
    pub fn conflicts(&self, kind: QueryKind) -> &HistogramSnapshot {
        &self.solve_conflicts[kind.idx()]
    }

    /// Render every counter and histogram in Prometheus text exposition
    /// format under the `genfv_` namespace. Latency histograms are
    /// scaled from µs to seconds per Prometheus convention.
    pub fn render_prometheus(&self, out: &mut String) {
        for c in Counter::ALL {
            prom_counter(out, &format!("genfv_{}_total", c.name()), "", self.counter(c));
        }
        for kind in QueryKind::ALL {
            prom_histogram(
                out,
                "genfv_solve_latency_seconds",
                &format!("kind=\"{}\"", kind.label()),
                self.latency(kind),
                1e-6,
            );
        }
        for kind in QueryKind::ALL {
            prom_histogram(
                out,
                "genfv_solve_conflicts",
                &format!("kind=\"{}\"", kind.label()),
                self.conflicts(kind),
                1.0,
            );
        }
        prom_histogram(out, "genfv_learnt_db_clauses", "", &self.learnt_db, 1.0);
        prom_histogram(out, "genfv_template_load_clauses", "", &self.template_clauses, 1.0);
    }
}

impl Accumulate for MetricsSnapshot {
    fn absorb(&mut self, other: &Self) {
        for (i, v) in other.counters.iter().enumerate() {
            self.counters[i] += v;
        }
        for (i, h) in other.solve_latency.iter().enumerate() {
            self.solve_latency[i].absorb(h);
        }
        for (i, h) in other.solve_conflicts.iter().enumerate() {
            self.solve_conflicts[i].absorb(h);
        }
        self.learnt_db.absorb(&other.learnt_db);
        self.template_clauses.absorb(&other.template_clauses);
    }
}

/// Append one `TYPE counter` metric in Prometheus text format.
pub fn prom_counter(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} counter\n"));
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Append one `TYPE gauge` metric in Prometheus text format.
pub fn prom_gauge(out: &mut String, name: &str, labels: &str, value: f64) {
    out.push_str(&format!("# TYPE {name} gauge\n"));
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Append one histogram in Prometheus text format. `scale` converts the
/// stored integer unit into the exposition unit (µs → s = `1e-6`).
/// Cumulative `_bucket` lines use the log₂ bucket upper bounds.
pub fn prom_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    snap: &HistogramSnapshot,
    scale: f64,
) {
    let sep = if labels.is_empty() { "" } else { "," };
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (b, &n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        // Skip the long flat tail: only emit buckets up to the last
        // populated one (plus +Inf below), keeping exposition compact.
        if n == 0 && snap.buckets[b..].iter().all(|&m| m == 0) {
            break;
        }
        let le = bucket_bound(b) as f64 * scale;
        out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n", snap.count));
    let sum = snap.sum as f64 * scale;
    if labels.is_empty() {
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {}\n", snap.count));
    } else {
        out.push_str(&format!("{name}_sum{{{labels}}} {sum}\n"));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", snap.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_merges_and_quantiles() {
        let h = AtomicHistogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let mut a = h.snapshot();
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 1106);
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.count, 10);
        assert_eq!(a.sum, 2212);
        assert!(a.quantile(0.5) <= 127, "median bucket bound");
        assert!(a.quantile(1.0) >= 1000);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let mut snap = MetricsSnapshot::default();
        snap.counters[Counter::Solves.idx()] = 7;
        snap.solve_latency[QueryKind::Step.idx()].record(1500);
        let mut out = String::new();
        snap.render_prometheus(&mut out);
        assert!(out.contains("# TYPE genfv_solves_total counter"));
        assert!(out.contains("genfv_solves_total 7"));
        assert!(out.contains("genfv_solve_latency_seconds_bucket{kind=\"step\",le=\"+Inf\"} 1"));
        assert!(out.contains("genfv_solve_latency_seconds_sum{kind=\"step\"} 0.0015"));
    }
}
