//! # genfv-obs — unified tracing, metrics, and solve-level profiling
//!
//! The observability layer of the genfv verification stack. Every other
//! crate in the workspace depends on this one (it depends on nothing),
//! and threads a cheap cloneable [`Obs`] handle down from the service or
//! bench entry point to the individual SAT solve calls.
//!
//! ## Spans
//!
//! A [`Span`] is a named, timed region recorded as a begin/end event
//! pair into a lock-free-per-thread trace buffer (each thread owns its
//! buffer exclusively; the only shared state touched per event is a
//! relaxed atomic timestamp/capacity counter). The span hierarchy mirrors
//! the stack:
//!
//! ```text
//! job                      (service: one verification job)
//! └─ prepare               (parse → elaborate → compile)
//!    └─ opt.<pass>         (one span per netlist optimization pass)
//! └─ flow.<kind>           (flow1 / flow2 / baseline / combined)
//!    └─ prove              (one span per target property)
//!       └─ session.extend.{base,step}   (frame unrolls)
//!       └─ portfolio.race
//!          └─ portfolio.probe
//!          └─ portfolio.epoch | portfolio.cubes → solve.cube
//!       └─ solve.{base,step,probe,cube}  (individual solver calls)
//! ```
//!
//! Traces export through the [`TraceSink`] trait: an in-memory
//! [`RingSink`] for tests, a Chrome `trace_event` JSON exporter
//! ([`ChromeTrace`], loadable in Perfetto / `chrome://tracing`), and a
//! human-readable aggregated tree ([`TreeRenderer`]).
//!
//! ## Metrics
//!
//! Monotonic [`Counter`]s plus log₂-bucketed latency/effort
//! [`AtomicHistogram`]s keyed by [`QueryKind`] (base / step / probe /
//! cube), fed by the solver's per-solve profiling hook (conflict /
//! decision / propagation deltas, learnt-DB size, template-load sizes).
//! Snapshots ([`MetricsSnapshot`]) render in Prometheus text exposition
//! format via [`prom_counter`] / [`prom_histogram`].
//!
//! ## Modes
//!
//! * [`ObsConfig::Off`] — the default. `Obs::off()` carries no
//!   allocation at all; every span costs exactly one branch.
//! * [`ObsConfig::Deterministic`] — timestamps come from a logical
//!   clock (an atomic tick counter), so two identical runs produce
//!   byte-identical span trees. Differential suites pin trace shape in
//!   this mode.
//! * [`ObsConfig::Full`] — wall-clock timestamps (µs since the handle
//!   was created) for real profiling and Perfetto export.

#![forbid(unsafe_code)]

mod accumulate;
mod json;
mod metrics;
mod sink;
mod span;

pub use accumulate::Accumulate;
pub use json::{parse_json, validate_chrome_trace, ChromeCheck, Json};
pub use metrics::{
    prom_counter, prom_gauge, prom_histogram, AtomicHistogram, Counter, HistogramSnapshot,
    MetricsSnapshot, QueryKind, HIST_BUCKETS,
};
pub use sink::{ChromeTrace, RingSink, TraceSink, TreeRenderer};
pub use span::{events_recorded_total, Obs, ObsConfig, ObsReport, Phase, Span, TraceEvent};
