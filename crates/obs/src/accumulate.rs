//! The [`Accumulate`] merge trait and the [`impl_accumulate!`] helper
//! that generates field-wise `absorb` implementations, replacing the
//! hand-written (and drift-prone) per-struct merge boilerplate the
//! stats structs used to carry.

/// A value that can fold another instance of itself into its totals.
///
/// The workspace stats structs (`SessionStats`, `ServiceStats`,
/// `OptStats`, solver `SolverStats`, metric snapshots) all implement
/// this; `absorb` is the single merge entry point, whether a worker
/// shard is folding into a flow total or the service is folding a job
/// snapshot into its lifetime metrics.
pub trait Accumulate {
    /// Fold `other` into `self`. Additive fields sum, watermark fields
    /// take the max, and "most recent query" fields copy from `other`
    /// when `other` actually ran queries.
    fn absorb(&mut self, other: &Self);
}

/// Generate an [`Accumulate`] impl from a field classification instead
/// of hand-written per-field merge code:
///
/// ```
/// use genfv_obs::{impl_accumulate, Accumulate};
///
/// #[derive(Default)]
/// struct Stats {
///     solves: u64,
///     conflicts: u64,
///     max_frame: usize,
///     saw_unknown: bool,
///     last_core: usize,
/// }
///
/// impl_accumulate!(Stats {
///     add: [solves, conflicts],
///     max: [max_frame],
///     or: [saw_unknown],
///     last_if solves: [last_core],
/// });
///
/// let mut a = Stats { solves: 1, conflicts: 10, ..Default::default() };
/// let b = Stats { solves: 2, conflicts: 5, max_frame: 3, last_core: 7, ..Default::default() };
/// a.absorb(&b);
/// assert_eq!((a.solves, a.conflicts, a.max_frame, a.last_core), (3, 15, 3, 7));
/// ```
///
/// Field classes (each optional, in this order):
/// * `add` — summed (`+=`; works for integers and `Duration`s),
/// * `max` — watermarks (`self = max(self, other)`),
/// * `or` — sticky booleans (`|=`),
/// * `merge` — nested fields that themselves implement [`Accumulate`],
/// * `last_if <guard>` — "most recent" fields copied from `other` only
///   when `other.<guard>` is nonzero (so merging an idle shard never
///   clobbers real last-query data).
#[macro_export]
macro_rules! impl_accumulate {
    ($ty:ty {
        // Section-separator commas are optional: rustfmt strips the
        // trailing comma from single-line invocations.
        $(add: [$($a:ident),* $(,)?] $(,)?)?
        $(max: [$($m:ident),* $(,)?] $(,)?)?
        $(or: [$($o:ident),* $(,)?] $(,)?)?
        $(merge: [$($n:ident),* $(,)?] $(,)?)?
        $(last_if $cond:ident: [$($l:ident),* $(,)?] $(,)?)?
    }) => {
        impl $crate::Accumulate for $ty {
            fn absorb(&mut self, other: &Self) {
                $($(self.$a += other.$a;)*)?
                $($(if other.$m > self.$m { self.$m = other.$m; })*)?
                $($(self.$o |= other.$o;)*)?
                $($($crate::Accumulate::absorb(&mut self.$n, &other.$n);)*)?
                $(if other.$cond > 0 { $(self.$l = other.$l;)* })?
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Accumulate;

    #[derive(Default, Debug, PartialEq)]
    struct Inner {
        hits: u64,
    }
    crate::impl_accumulate!(Inner { add: [hits] });

    #[derive(Default, Debug, PartialEq)]
    struct Outer {
        runs: u64,
        peak: usize,
        failed: bool,
        inner: Inner,
        last_len: usize,
    }
    crate::impl_accumulate!(Outer {
        add: [runs],
        max: [peak],
        or: [failed],
        merge: [inner],
        last_if runs: [last_len],
    });

    #[test]
    fn all_field_classes_merge() {
        let mut a = Outer { runs: 1, peak: 5, last_len: 9, ..Default::default() };
        a.absorb(&Outer { runs: 2, peak: 3, failed: true, inner: Inner { hits: 4 }, last_len: 7 });
        assert_eq!(
            a,
            Outer { runs: 3, peak: 5, failed: true, inner: Inner { hits: 4 }, last_len: 7 }
        );
        // An idle other (guard == 0) must not clobber last-query data.
        a.absorb(&Outer::default());
        assert_eq!(a.last_len, 7);
    }
}
