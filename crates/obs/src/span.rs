//! The [`Obs`] handle, span guards, and the per-thread trace buffers.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::Instant;

use crate::metrics::{Counter, Metrics, MetricsSnapshot, QueryKind};
use crate::sink::TraceSink;

/// Observability mode. `Off` is the default and must stay cheap enough
/// to leave enabled in release hot paths: an `Obs` built from `Off`
/// holds no allocation and every span call is a single `is_none` branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsConfig {
    /// No tracing, no metrics. One branch per span.
    #[default]
    Off,
    /// Logical clock: timestamps are ticks from an atomic counter, so
    /// identical runs produce identical traces (used to pin span-tree
    /// shape in differential tests). Span structure without wall times.
    Deterministic,
    /// Wall-clock timestamps in microseconds since the handle was
    /// created; suitable for Perfetto / `chrome://tracing` export.
    Full,
}

impl ObsConfig {
    /// Whether this mode records anything at all.
    pub fn enabled(self) -> bool {
        !matches!(self, ObsConfig::Off)
    }
}

/// Event phase, mirroring Chrome `trace_event` phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One recorded trace event. `ts` is microseconds since the owning
/// [`Obs`] handle was created in [`ObsConfig::Full`] mode, or a logical
/// tick in [`ObsConfig::Deterministic`] mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static span name (`"solve.step"`, `"portfolio.epoch"`, …).
    pub name: &'static str,
    /// Optional dynamic annotation (design name, budget, …). Only
    /// allocated when the handle is enabled.
    pub detail: Option<Box<str>>,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Timestamp (µs or logical tick; see [`ObsConfig`]).
    pub ts: u64,
    /// Logical thread id, assigned per thread per handle in first-event
    /// order (a single-threaded run always uses tid 0).
    pub tid: u64,
}

/// Process-wide count of trace events ever recorded by *any* enabled
/// handle. The disabled path cannot reach the recording code, so tests
/// assert this stays flat across an `ObsConfig::Off` run to prove the
/// zero-allocation claim.
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Total trace events recorded process-wide (test support; see
/// [`EVENTS_RECORDED`]).
pub fn events_recorded_total() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Unique ids for handle instances, so the thread-local buffer cache can
/// never confuse two handles even if an allocation address is reused.
static OBS_IDS: AtomicU64 = AtomicU64::new(1);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A per-thread event buffer. Exactly one thread ever pushes into it
/// (the owning thread), so the mutex is uncontended on the hot path; it
/// exists only so the collector can drain buffers after worker threads
/// exit (scoped portfolio threads join before the race returns).
struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<TraceEvent>>,
}

thread_local! {
    /// (handle id, buffer) cache so a thread finds its buffer without
    /// touching the handle's registry after the first event.
    static BUF_CACHE: RefCell<Vec<(u64, Weak<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

pub(crate) struct ObsInner {
    id: u64,
    mode: ObsConfig,
    epoch: Instant,
    tick: AtomicU64,
    next_tid: AtomicU64,
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
    capacity: u64,
    pub(crate) metrics: Metrics,
}

impl ObsInner {
    fn now(&self) -> u64 {
        match self.mode {
            ObsConfig::Deterministic => self.tick.fetch_add(1, Ordering::Relaxed),
            _ => self.epoch.elapsed().as_micros() as u64,
        }
    }

    fn buf(self: &Arc<Self>) -> Arc<ThreadBuf> {
        BUF_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if let Some(buf) =
                cache.iter().find(|(id, _)| *id == self.id).and_then(|(_, w)| w.upgrade())
            {
                return buf;
            }
            // Drop cache entries whose handle has died before adding.
            cache.retain(|(_, w)| w.strong_count() > 0);
            let buf = Arc::new(ThreadBuf {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            lock(&self.buffers).push(buf.clone());
            cache.push((self.id, Arc::downgrade(&buf)));
            buf
        })
    }

    fn record(self: &Arc<Self>, name: &'static str, detail: Option<Box<str>>, phase: Phase) {
        if self.recorded.fetch_add(1, Ordering::Relaxed) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        let buf = self.buf();
        let ev = TraceEvent { name, detail, phase, ts: self.now(), tid: buf.tid };
        lock(&buf.events).push(ev);
    }

    /// All events so far, concatenated per-buffer then stably sorted by
    /// timestamp (per-thread order is preserved for equal timestamps).
    fn collect(&self, drain: bool) -> Vec<TraceEvent> {
        let buffers = lock(&self.buffers);
        let mut out = Vec::new();
        for buf in buffers.iter() {
            let mut events = lock(&buf.events);
            if drain {
                out.append(&mut events);
            } else {
                out.extend(events.iter().cloned());
            }
        }
        out.sort_by_key(|e| e.ts);
        out
    }
}

/// A cheap cloneable observability handle. `Obs::off()` (the
/// [`Default`]) is a `None` internally: spans, instants, and metric
/// hooks all cost one branch and allocate nothing. An enabled handle is
/// an `Arc` around the trace collector + metrics registry, so clones
/// share one trace.
///
/// Equality compares *modes only* (handles live inside `PartialEq`
/// config structs; two configs with the same mode are interchangeable
/// for differential purposes even if their handles differ).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obs({:?})", self.mode())
    }
}

impl PartialEq for Obs {
    fn eq(&self, other: &Self) -> bool {
        self.mode() == other.mode()
    }
}
impl Eq for Obs {}

/// Default per-handle event capacity; past this, events are counted as
/// dropped rather than recorded (a runaway trace cannot exhaust memory).
const DEFAULT_CAPACITY: u64 = 1 << 21;

impl Obs {
    /// A recording handle in the given mode ([`ObsConfig::Off`] yields
    /// the disabled handle).
    pub fn new(config: ObsConfig) -> Self {
        Self::with_capacity(config, DEFAULT_CAPACITY)
    }

    /// [`Obs::new`] with an explicit event-capacity cap.
    pub fn with_capacity(config: ObsConfig, capacity: u64) -> Self {
        if !config.enabled() {
            return Self::off();
        }
        Obs {
            inner: Some(Arc::new(ObsInner {
                id: OBS_IDS.fetch_add(1, Ordering::Relaxed),
                mode: config,
                epoch: Instant::now(),
                tick: AtomicU64::new(0),
                next_tid: AtomicU64::new(0),
                buffers: Mutex::new(Vec::new()),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                capacity,
                metrics: Metrics::default(),
            })),
        }
    }

    /// The disabled handle: no allocation, one branch per span.
    pub fn off() -> Self {
        Obs { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The mode this handle was built with.
    pub fn mode(&self) -> ObsConfig {
        match &self.inner {
            None => ObsConfig::Off,
            Some(inner) => inner.mode,
        }
    }

    /// Open a span; it closes (records its end event) when the returned
    /// guard drops. On a disabled handle this is one branch and returns
    /// a no-op guard.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { obs: None, name },
            Some(inner) => {
                inner.record(name, None, Phase::Begin);
                Span { obs: Some(inner.clone()), name }
            }
        }
    }

    /// [`Obs::span`] with a lazily-built annotation (the closure only
    /// runs — and the string is only allocated — when enabled).
    #[inline]
    pub fn span_with(&self, name: &'static str, detail: impl FnOnce() -> String) -> Span {
        match &self.inner {
            None => Span { obs: None, name },
            Some(inner) => {
                inner.record(name, Some(detail().into_boxed_str()), Phase::Begin);
                Span { obs: Some(inner.clone()), name }
            }
        }
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            inner.record(name, None, Phase::Instant);
        }
    }

    /// Current timestamp on this handle's clock (µs in `Full`, a fresh
    /// logical tick in `Deterministic`, always `0` when disabled). Use
    /// for latency deltas fed back into [`Obs::record_solve`].
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.now(),
        }
    }

    /// Solver profiling hook: one call per completed solve, carrying the
    /// per-query effort deltas and the learnt-DB size at solve exit.
    /// Feeds the per-kind latency/effort histograms and the effort
    /// counters.
    #[inline]
    pub fn record_solve(
        &self,
        kind: QueryKind,
        latency: u64,
        conflicts: u64,
        decisions: u64,
        propagations: u64,
        learnt_db: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_solve(
                kind,
                latency,
                conflicts,
                decisions,
                propagations,
                learnt_db,
            );
        }
    }

    /// Template profiling hook: one call per `load_template`-style
    /// frame instantiation, with the clause count stamped in.
    #[inline]
    pub fn record_template_load(&self, clauses: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_template_load(clauses);
        }
    }

    /// Bump a monotonic counter.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(counter, delta);
        }
    }

    /// Snapshot the metrics registry (`None` when disabled).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| inner.metrics.snapshot())
    }

    /// Events recorded past the capacity cap (dropped, not stored).
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
        }
    }

    /// Clone out all events recorded so far, in timestamp order.
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.collect(false),
        }
    }

    /// Drain all events recorded so far, in timestamp order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.collect(true),
        }
    }

    /// Feed a snapshot of the trace through a [`TraceSink`] (events in
    /// timestamp order, then `finish`).
    pub fn flush_to(&self, sink: &mut dyn TraceSink) {
        for ev in self.snapshot_events() {
            sink.event(&ev);
        }
        sink.finish();
    }

    /// Drain the handle into a self-contained [`ObsReport`] (`None` when
    /// disabled). The report owns the events + a metrics snapshot and
    /// can render itself as Chrome JSON or a summary tree.
    pub fn report(&self) -> Option<ObsReport> {
        self.inner.as_ref().map(|inner| ObsReport {
            mode: inner.mode,
            events: self.take_events(),
            metrics: inner.metrics.snapshot(),
            dropped: inner.dropped.load(Ordering::Relaxed),
        })
    }
}

/// RAII span guard returned by [`Obs::span`]; records the end event on
/// drop. The no-op variant (disabled handle) holds no allocation and
/// drops with one branch.
#[must_use = "a span records its duration when the guard drops"]
pub struct Span {
    obs: Option<Arc<ObsInner>>,
    name: &'static str,
}

impl Span {
    /// Close the span early (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.obs.take() {
            inner.record(self.name, None, Phase::End);
        }
    }
}

/// A drained per-handle trace: events + metrics snapshot, detached from
/// the live collector. This is what `JobReport` carries per job.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// Mode the trace was recorded under.
    pub mode: ObsConfig,
    /// All events, in timestamp order.
    pub events: Vec<TraceEvent>,
    /// Metrics at drain time.
    pub metrics: MetricsSnapshot,
    /// Events lost to the capacity cap.
    pub dropped: u64,
}

impl ObsReport {
    /// Export as Chrome `trace_event` JSON (object form, loadable in
    /// Perfetto / `chrome://tracing`).
    pub fn chrome_json(&self) -> String {
        crate::sink::ChromeTrace::export(&self.events)
    }

    /// Render the aggregated human-readable span tree.
    pub fn render_tree(&self) -> String {
        let mut tree = if self.mode == ObsConfig::Deterministic {
            crate::sink::TreeRenderer::logical()
        } else {
            crate::sink::TreeRenderer::new()
        };
        for ev in &self.events {
            tree.event(ev);
        }
        tree.finish();
        tree.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let before = events_recorded_total();
        let obs = Obs::off();
        {
            let _outer = obs.span("outer");
            let _inner = obs.span_with("inner", || unreachable!("detail must stay lazy"));
            obs.instant("tick");
            obs.record_solve(QueryKind::Base, 1, 2, 3, 4, 5);
        }
        assert!(!obs.is_enabled());
        assert_eq!(obs.snapshot_events(), Vec::new());
        assert_eq!(obs.metrics(), None);
        assert_eq!(events_recorded_total(), before, "Off must not reach the recorder");
    }

    #[test]
    fn deterministic_clock_is_reproducible() {
        let run = || {
            let obs = Obs::new(ObsConfig::Deterministic);
            {
                let _a = obs.span("a");
                let _b = obs.span_with("b", || "x".to_string());
                obs.instant("i");
            }
            obs.take_events()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "logical-clock traces must be byte-identical across runs");
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].ts, 0);
        assert!(a.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn spans_nest_and_balance() {
        let obs = Obs::new(ObsConfig::Full);
        {
            let _outer = obs.span("outer");
            for _ in 0..3 {
                let _inner = obs.span("inner");
            }
        }
        let events = obs.snapshot_events();
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!((begins, ends), (4, 4));
        assert_eq!(events.first().map(|e| (e.name, e.phase)), Some(("outer", Phase::Begin)));
        assert_eq!(events.last().map(|e| (e.name, e.phase)), Some(("outer", Phase::End)));
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let obs = Obs::with_capacity(ObsConfig::Deterministic, 4);
        for _ in 0..10 {
            obs.instant("e");
        }
        assert_eq!(obs.snapshot_events().len(), 4);
        assert_eq!(obs.dropped_events(), 6);
    }

    #[test]
    fn threads_get_distinct_tids_and_events_merge() {
        let obs = Obs::new(ObsConfig::Full);
        let _outer = obs.span("main");
        std::thread::scope(|s| {
            for _ in 0..2 {
                let obs = obs.clone();
                s.spawn(move || {
                    let _w = obs.span("worker");
                });
            }
        });
        drop(_outer);
        let events = obs.snapshot_events();
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "main + two workers");
        assert_eq!(events.len(), 6);
    }
}
