//! The portfolio scheduler: probe, clone, race, share, swap back.

use genfv_obs::{Counter, Obs, QueryKind};
use genfv_sat::{Lit, QueryEffort, RestartPolicy, SolveResult, Solver, SolverConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Portfolio scheduling knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioConfig {
    /// Worker solvers racing each query (clamped to at least 1; 1 is the
    /// degenerate single-solver case). Worker 0 always keeps the parent
    /// configuration, so a portfolio can never lose a verdict a single
    /// solver would have reached.
    pub workers: usize,
    /// Master seed: every worker's configuration jitter (and its phase
    /// scramble) is a pure function of `(seed, worker)`.
    pub seed: u64,
    /// Run the parent alone under this conflict budget before cloning
    /// anything. Queries that finish inside the probe pay zero portfolio
    /// overhead; only the heavy tail is raced. `None` races every query.
    pub probe_conflicts: Option<u64>,
    /// `true` (default): lock-step conflict-budget epochs with a
    /// deterministic winner (reproducible stats and solver state).
    /// `false`: wall-clock race with first-winner cancellation (lowest
    /// latency, scheduler-dependent winner identity).
    pub deterministic: bool,
    /// First epoch's per-worker conflict budget (deterministic mode).
    pub epoch_start: u64,
    /// Multiplier applied to the epoch budget after each winnerless
    /// epoch (deterministic mode).
    pub epoch_growth: u64,
    /// Import the losers' freshly-learnt glue clauses into the winner
    /// before it replaces the parent, so every worker's discoveries
    /// carry into the next query.
    pub share_glue: bool,
    /// Maximum literal-block distance of shared clauses.
    pub glue_lbd_max: u32,
    /// Cap on clauses imported per race.
    pub glue_import_limit: usize,
    /// Keep the winning worker's configuration on the caller's solver
    /// after a race instead of restoring the original one. Subsequent
    /// queries then run the empirically-better heuristics *solo* (no
    /// clone, no ladder) until the probe expires again — a deterministic
    /// self-correcting adaptation that converges on the right
    /// configuration per design after a single race.
    pub adopt_winner: bool,
    /// Cube-and-conquer: when a query survives the probe, split its
    /// search space into `2^cube_depth` sign cubes over lookahead-scored
    /// high-activity variables ([`genfv_sat::cube::split`]) and conquer
    /// the cubes on the lock-step ladder instead of racing configuration
    /// jitter. Any SAT cube wins; all cubes UNSAT proves, with the
    /// per-cube assumption cores merged. `0` (default) disables cubing;
    /// cube scheduling needs [`PortfolioConfig::deterministic`] (the
    /// wall-clock discipline falls back to configuration racing).
    pub cube_depth: u32,
    /// High-activity candidate variables lookahead-scored per split.
    pub cube_candidates: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        // Calibrated on the genfv corpus (see `e9_portfolio`): the probe
        // keeps light queries race-free; two ladder workers with a 16k
        // first epoch bound the overshoot on the heavy tail they rescue.
        PortfolioConfig {
            workers: 2,
            seed: 0x5EED_0F0E,
            probe_conflicts: Some(2000),
            deterministic: true,
            epoch_start: 16000,
            epoch_growth: 4,
            share_glue: true,
            glue_lbd_max: 3,
            glue_import_limit: 512,
            adopt_winner: false,
            cube_depth: 0,
            cube_candidates: 16,
        }
    }
}

/// Per-worker jitter tables: the highest-leverage knobs first, so small
/// portfolios still cover the interesting heuristic axes.
const VAR_DECAYS: [f64; 5] = [0.85, 0.99, 0.92, 0.75, 0.95];
const RESTART_BASES: [u64; 5] = [32, 256, 64, 512, 128];

fn splitmix(seed: u64, index: usize) -> u64 {
    let mut z = seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The configuration raced by `worker` under master seed `seed`.
/// Worker 0 is always the unmodified `base`; higher workers cycle
/// through `var_decay` / `restart_base` variations, alternate Luby and
/// geometric restarts, and receive a deterministic phase scramble.
pub fn worker_config(base: &SolverConfig, seed: u64, worker: usize) -> SolverConfig {
    if worker == 0 {
        return base.clone();
    }
    let slot = (worker - 1) % VAR_DECAYS.len();
    SolverConfig {
        var_decay: VAR_DECAYS[slot],
        restart_base: RESTART_BASES[slot],
        restart_policy: if worker.is_multiple_of(2) {
            RestartPolicy::Geometric { factor: 1.3 }
        } else {
            RestartPolicy::Luby
        },
        phase_jitter_seed: Some(splitmix(seed, worker)),
        ..base.clone()
    }
}

/// Solver effort one worker spent inside one race.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0 = the parent configuration).
    pub worker: usize,
    /// Conflicts spent during the race (probe included for worker 0).
    pub conflicts: u64,
    /// Decisions spent during the race.
    pub decisions: u64,
    /// Propagations spent during the race.
    pub propagations: u64,
}

/// What one [`Portfolio::race`] call did and found.
#[derive(Clone, Debug)]
pub struct RaceOutcome {
    /// The verdict (identical to what any single worker would conclude;
    /// `Unknown` only when the caller's conflict budget expired on every
    /// worker).
    pub result: SolveResult,
    /// Whether worker clones were actually raced (`false` when the probe
    /// settled the query solo).
    pub raced: bool,
    /// The winning worker's effort; the winner's solver replaced the
    /// parent, so its model/core are what the caller reads.
    pub winner: WorkerStats,
    /// Lock-step epochs executed (0 for probe-settled or wall-clock
    /// races).
    pub epochs: u64,
    /// Workers that reached a verdict.
    pub finishers: usize,
    /// Glue clauses imported into the winner from the losers.
    pub glue_imported: usize,
    /// Conflicts spent across all workers (probe included) — the total
    /// CPU price paid for the query.
    pub conflicts_total: u64,
    /// Cubes conquered by cube-and-conquer scheduling (0 when the query
    /// was probe-settled or raced by configuration jitter).
    pub cubes_raced: usize,
}

fn baseline(s: &Solver) -> QueryEffort {
    s.stats().effort()
}

fn spent_since(s: &Solver, b: QueryEffort) -> WorkerStats {
    let spent = s.stats().effort().since(b);
    WorkerStats {
        worker: 0,
        conflicts: spent.conflicts,
        decisions: spent.decisions,
        propagations: spent.propagations,
    }
}

/// The portfolio scheduler. Stateless apart from its configuration: each
/// [`Portfolio::race`] call clones the caller's solver, races the clones,
/// and installs the winner back into the caller's slot.
#[derive(Clone, Debug, Default)]
pub struct Portfolio {
    config: PortfolioConfig,
}

impl Portfolio {
    /// A scheduler with the given configuration.
    pub fn new(config: PortfolioConfig) -> Self {
        Portfolio { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Answers `solve_with_assumptions(assumptions)` on `solver` by
    /// portfolio racing. On return, `solver` holds the winning worker's
    /// state (restored to its original configuration): its model or
    /// assumption core is readable exactly as after a plain solve, and
    /// its learnt clauses — plus the losers' shared glue — persist for
    /// the next query. `budget` caps the conflicts *each* worker may
    /// spend (the single-solver per-query budget semantics); when every
    /// worker exhausts it the result is [`SolveResult::Unknown`].
    pub fn race(
        &self,
        solver: &mut Solver,
        assumptions: &[Lit],
        budget: Option<u64>,
    ) -> RaceOutcome {
        let workers = self.config.workers.max(1);
        let base0 = baseline(solver);
        let obs = solver.obs().clone();
        let session_kind = solver.query_kind();

        // --- degenerate single-worker portfolio: plain solve -------------
        if workers == 1 {
            if let Some(b) = budget {
                solver.set_conflict_budget(b);
            }
            let result = solver.solve_with_assumptions(assumptions);
            let winner = spent_since(solver, base0);
            return RaceOutcome {
                result,
                raced: false,
                winner,
                epochs: 0,
                finishers: usize::from(result != SolveResult::Unknown),
                glue_imported: 0,
                conflicts_total: winner.conflicts,
                cubes_raced: 0,
            };
        }

        // --- probe: run the parent alone under a small budget ------------
        if let Some(probe) = self.config.probe_conflicts {
            let cap = budget.map_or(probe, |b| probe.min(b));
            let probe_span = obs.span("portfolio.probe");
            solver.set_conflict_budget(cap);
            solver.set_query_kind(QueryKind::Probe);
            let result = solver.solve_with_assumptions(assumptions);
            solver.set_query_kind(session_kind);
            probe_span.end();
            let spent = spent_since(solver, base0);
            let exhausted = budget.is_some_and(|b| spent.conflicts >= b);
            if result != SolveResult::Unknown || exhausted {
                return RaceOutcome {
                    result,
                    raced: false,
                    winner: spent,
                    epochs: 0,
                    finishers: usize::from(result != SolveResult::Unknown),
                    glue_imported: 0,
                    conflicts_total: spent.conflicts,
                    cubes_raced: 0,
                };
            }
        }

        let _race_span = obs.span("portfolio.race");
        obs.add(Counter::Races, 1);

        // --- cube-and-conquer: split the search space itself --------------
        if self.config.cube_depth > 0 && self.config.deterministic {
            if let Some(cubes) = genfv_sat::cube::split(
                solver,
                assumptions,
                self.config.cube_depth,
                self.config.cube_candidates,
            ) {
                let outcome = self.race_cubes(solver, assumptions, budget, &cubes, base0, &obs);
                solver.set_query_kind(session_kind);
                return outcome;
            }
        }

        // --- clone the loaded clause database across the pool ------------
        let base_config = solver.config().clone();
        let mark = solver.clause_db_mark();
        let parent = std::mem::take(solver);
        let mut pool: Vec<Solver> = Vec::with_capacity(workers);
        pool.push(parent);
        for w in 1..workers {
            pool.push(pool[0].clone_with_config(worker_config(&base_config, self.config.seed, w)));
        }
        // Per-worker baselines: clones inherit the parent's cumulative
        // stats, so each baseline is taken on the clone itself. Worker 0
        // is charged for the probe by reusing the pre-probe baseline.
        let mut baselines: Vec<QueryEffort> = pool.iter().map(baseline).collect();
        baselines[0] = base0;

        let (winner_idx, result, epochs, finishers) = if self.config.deterministic {
            self.race_epochs(&mut pool, &baselines, assumptions, budget, &obs)
        } else {
            self.race_wall_clock(&mut pool, &baselines, assumptions, budget, &obs)
        };

        // --- share the losers' fresh glue into the winner -----------------
        let mut glue_imported = 0usize;
        if self.config.share_glue {
            let mut glue: Vec<Vec<Lit>> = Vec::new();
            for (i, s) in pool.iter().enumerate() {
                if i == winner_idx {
                    continue;
                }
                let room = self.config.glue_import_limit.saturating_sub(glue.len());
                if room == 0 {
                    break;
                }
                glue.extend(s.export_glue_since(mark, self.config.glue_lbd_max, room));
            }
            for clause in &glue {
                pool[winner_idx].import_learnt(clause);
                glue_imported += 1;
            }
        }

        // --- install the winner back into the caller's slot ---------------
        let conflicts_total: u64 =
            pool.iter().zip(&baselines).map(|(s, &b)| spent_since(s, b).conflicts).sum();
        let mut winner = spent_since(&pool[winner_idx], baselines[winner_idx]);
        winner.worker = winner_idx;
        *solver = pool.swap_remove(winner_idx);
        solver.set_interrupt(None);
        if !(self.config.adopt_winner && winner_idx != 0) {
            solver.reconfigure(base_config);
        }
        RaceOutcome {
            result,
            raced: true,
            winner,
            epochs,
            finishers,
            glue_imported,
            conflicts_total,
            cubes_raced: 0,
        }
    }

    /// Cube-and-conquer on the lock-step ladder: one worker clone per
    /// cube (cyclically jittered like configuration racing), each
    /// conquering its cube — the query's assumptions plus the cube's
    /// fixed sign assignments. The first SAT cube wins outright (the
    /// cubes partition the search space, so its model satisfies the
    /// original query) and its solver replaces the parent; when *every*
    /// cube is refuted the query is UNSAT, the parent survives with all
    /// cube workers' glue imported, and the per-cube assumption cores —
    /// restricted to the original assumptions — are merged into the core
    /// the caller reads. (Restriction is sound: any assignment satisfying
    /// the merged core lies in exactly one cube `j` and would satisfy
    /// cube `j`'s full core, which is refuted.) Everything runs on the
    /// deterministic epoch ladder, so cube conquest reproduces bit for
    /// bit like configuration racing.
    fn race_cubes(
        &self,
        solver: &mut Solver,
        assumptions: &[Lit],
        budget: Option<u64>,
        cubes: &[Vec<Lit>],
        base0: QueryEffort,
        obs: &Obs,
    ) -> RaceOutcome {
        let _cubes_span = obs.span_with("portfolio.cubes", || format!("cubes={}", cubes.len()));
        obs.add(Counter::CubeSplits, cubes.len() as u64);
        let base_config = solver.config().clone();
        let mark = solver.clause_db_mark();
        let parent = std::mem::take(solver);
        let n = cubes.len();
        let mut pool: Vec<Solver> = (0..n)
            .map(|i| {
                let mut worker =
                    parent.clone_with_config(worker_config(&base_config, self.config.seed, i));
                worker.set_query_kind(QueryKind::Cube);
                worker
            })
            .collect();
        let baselines: Vec<QueryEffort> = pool.iter().map(baseline).collect();
        let extended: Vec<Vec<Lit>> = cubes
            .iter()
            .map(|cube| assumptions.iter().chain(cube.iter()).copied().collect())
            .collect();

        let mut merged_core: Vec<Lit> = Vec::new();
        let mut refuted = vec![false; n];
        let mut epoch_budget = self.config.epoch_start.max(1);
        let mut epochs = 0u64;
        let mut sat_cube: Option<usize> = None;
        let result = 'race: loop {
            epochs += 1;
            let _epoch_span = obs.span_with("portfolio.epoch", || format!("budget={epoch_budget}"));
            let mut order: Vec<usize> = (0..n).filter(|&i| !refuted[i]).collect();
            if order.is_empty() {
                break SolveResult::Unsat;
            }
            order.sort_by_key(|&i| (spent_since(&pool[i], baselines[i]).conflicts, i));
            let mut any_ran = false;
            for &i in &order {
                let remaining = match budget {
                    Some(total) => {
                        total.saturating_sub(spent_since(&pool[i], baselines[i]).conflicts)
                    }
                    None => u64::MAX,
                };
                if remaining == 0 {
                    continue;
                }
                any_ran = true;
                pool[i].set_conflict_budget(epoch_budget.min(remaining));
                match pool[i].solve_with_assumptions(&extended[i]) {
                    SolveResult::Sat => {
                        sat_cube = Some(i);
                        break 'race SolveResult::Sat;
                    }
                    SolveResult::Unsat => {
                        refuted[i] = true;
                        for &l in pool[i].last_core() {
                            if assumptions.contains(&l) && !merged_core.contains(&l) {
                                merged_core.push(l);
                            }
                        }
                    }
                    SolveResult::Unknown => {}
                }
            }
            if !any_ran {
                break SolveResult::Unknown;
            }
            epoch_budget = epoch_budget.saturating_mul(self.config.epoch_growth.max(2));
        };

        let finishers = refuted.iter().filter(|&&r| r).count() + usize::from(sat_cube.is_some());
        let probe_spent = spent_since(&parent, base0);
        let conflicts_total: u64 = probe_spent.conflicts
            + pool.iter().zip(&baselines).map(|(s, &b)| spent_since(s, b).conflicts).sum::<u64>();

        // The survivor: the SAT cube's solver (model readable), or the
        // parent on UNSAT/Unknown. Either way it absorbs the other
        // workers' fresh glue — clauses learnt under cube assumptions are
        // consequences of the shared formula, cube-independent.
        let (mut survivor, mut winner) = match sat_cube {
            Some(i) => {
                let mut w = spent_since(&pool[i], baselines[i]);
                w.worker = i;
                (pool.swap_remove(i), w)
            }
            None => (parent, probe_spent),
        };
        if sat_cube.is_none() {
            winner.worker = 0;
        }
        let mut glue_imported = 0usize;
        if self.config.share_glue {
            let mut glue: Vec<Vec<Lit>> = Vec::new();
            for s in &pool {
                let room = self.config.glue_import_limit.saturating_sub(glue.len());
                if room == 0 {
                    break;
                }
                glue.extend(s.export_glue_since(mark, self.config.glue_lbd_max, room));
            }
            for clause in &glue {
                survivor.import_learnt(clause);
                glue_imported += 1;
            }
        }
        survivor.reconfigure(base_config);
        *solver = survivor;
        if result == SolveResult::Unsat {
            solver.set_last_core(merged_core);
        }
        RaceOutcome {
            result,
            raced: true,
            winner,
            epochs,
            finishers,
            glue_imported,
            conflicts_total,
            cubes_raced: n,
        }
    }

    /// Deterministic discipline: a sequential conflict-budget ladder.
    /// Each epoch visits the workers in order of least conflicts spent so
    /// far (ties to the lowest index — the jittered clones run before the
    /// probe-warmed parent), gives each up to the epoch budget, and stops
    /// at the *first* finisher. Everything — winner identity, winner
    /// statistics, and every loser's solver state — is a pure function of
    /// the worker configurations, so fixed seeds reproduce races bit for
    /// bit on any machine. The ladder also never oversubscribes the CPU:
    /// racing costs at most one epoch-round more than the winner's own
    /// search, which is what makes portfolio mode safe to enable inside
    /// already-parallel stages (and on small machines). Use the
    /// wall-clock discipline when minimum latency on idle cores matters
    /// more than reproducibility.
    fn race_epochs(
        &self,
        pool: &mut [Solver],
        baselines: &[QueryEffort],
        assumptions: &[Lit],
        budget: Option<u64>,
        obs: &Obs,
    ) -> (usize, SolveResult, u64, usize) {
        let mut epoch_budget = self.config.epoch_start.max(1);
        let mut epochs = 0u64;
        loop {
            epochs += 1;
            let _epoch_span = obs.span_with("portfolio.epoch", || format!("budget={epoch_budget}"));
            let mut order: Vec<usize> = (0..pool.len()).collect();
            order.sort_by_key(|&i| (spent_since(&pool[i], baselines[i]).conflicts, i));
            let mut any_ran = false;
            for &i in &order {
                let remaining = match budget {
                    Some(total) => {
                        total.saturating_sub(spent_since(&pool[i], baselines[i]).conflicts)
                    }
                    None => u64::MAX,
                };
                if remaining == 0 {
                    continue;
                }
                any_ran = true;
                pool[i].set_conflict_budget(epoch_budget.min(remaining));
                let r = pool[i].solve_with_assumptions(assumptions);
                if r != SolveResult::Unknown {
                    return (i, r, epochs, 1);
                }
            }
            if !any_ran {
                return (0, SolveResult::Unknown, epochs, 0);
            }
            epoch_budget = epoch_budget.saturating_mul(self.config.epoch_growth.max(2));
        }
    }

    /// Wall-clock discipline: every worker gets its full remaining budget
    /// at once; the first verdict over the first-winner channel trips a
    /// shared interrupt flag that stops the losers at their next
    /// conflict. Lowest latency; winner identity is scheduler-dependent.
    fn race_wall_clock(
        &self,
        pool: &mut [Solver],
        baselines: &[QueryEffort],
        assumptions: &[Lit],
        budget: Option<u64>,
        obs: &Obs,
    ) -> (usize, SolveResult, u64, usize) {
        let _span = obs.span("portfolio.wall_clock");
        let flag = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(usize, SolveResult)>();
        std::thread::scope(|scope| {
            for (idx, (s, &b)) in pool.iter_mut().zip(baselines).enumerate() {
                let tx = tx.clone();
                let flag = Arc::clone(&flag);
                s.set_interrupt(Some(Arc::clone(&flag)));
                scope.spawn(move || {
                    let remaining = match budget {
                        Some(total) => total.saturating_sub(spent_since(s, b).conflicts),
                        None => u64::MAX,
                    };
                    if remaining == 0 {
                        let _ = tx.send((idx, SolveResult::Unknown));
                        return;
                    }
                    if remaining != u64::MAX {
                        s.set_conflict_budget(remaining);
                    }
                    let r = s.solve_with_assumptions(assumptions);
                    if r != SolveResult::Unknown {
                        flag.store(true, Ordering::Relaxed);
                    }
                    let _ = tx.send((idx, r));
                });
            }
            drop(tx);
        });
        for s in pool.iter_mut() {
            s.set_interrupt(None);
        }
        let arrival: Vec<(usize, SolveResult)> = rx.try_iter().collect();
        let finishers = arrival.iter().filter(|(_, r)| *r != SolveResult::Unknown).count();
        match arrival.iter().find(|(_, r)| *r != SolveResult::Unknown) {
            Some(&(idx, r)) => (idx, r, 0, finishers),
            None => (0, SolveResult::Unknown, 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genfv_sat::Lit;

    /// PHP(n, n-1): hard UNSAT with plenty of variance across configs.
    fn pigeonhole(s: &mut Solver, n: usize) {
        let mut p = vec![vec![Lit::UNDEF; n - 1]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (&a, &b) in row_i.iter().zip(row_j) {
                    s.add_clause([!a, !b]);
                }
            }
        }
    }

    fn race_config() -> PortfolioConfig {
        PortfolioConfig {
            workers: 3,
            probe_conflicts: Some(8),
            epoch_start: 64,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn probe_settles_easy_queries_without_cloning() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        s.add_clause([a]);
        let out = Portfolio::new(PortfolioConfig::default()).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Sat);
        assert!(!out.raced, "trivial query must not spawn workers");
        assert_eq!(s.value(a), Some(true), "model readable on the caller's solver");
    }

    #[test]
    fn race_reaches_the_single_solver_verdict() {
        let mut single = Solver::new();
        pigeonhole(&mut single, 7);
        let mut raced = single.clone();
        assert!(single.solve().is_unsat());
        let out = Portfolio::new(race_config()).race(&mut raced, &[], None);
        assert_eq!(out.result, SolveResult::Unsat);
        assert!(out.raced, "PHP(7,6) blows an 8-conflict probe");
        assert!(out.finishers >= 1);
    }

    #[test]
    fn sat_race_leaves_a_readable_model() {
        let mut s = Solver::new();
        // Hard-ish satisfiable: PHP(7,6) relaxed by one extra hole var
        // per pigeon is overkill; use an unconstrained wide XOR ladder.
        let vars: Vec<Lit> = (0..64).map(|_| Lit::pos(s.new_var())).collect();
        for w in vars.windows(2) {
            s.add_clause([w[0], w[1]]);
            s.add_clause([!w[0], !w[1]]);
        }
        let cfg = PortfolioConfig { probe_conflicts: None, ..race_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Sat);
        let m: Vec<bool> = vars.iter().map(|&l| s.value(l).expect("assigned")).collect();
        for w in m.windows(2) {
            assert_ne!(w[0], w[1], "model must satisfy the alternation chain");
        }
    }

    #[test]
    fn assumption_core_survives_the_swap() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([!a, c]);
        s.add_clause([!b, !c]);
        pigeonhole(&mut s, 6); // padding so the race actually races
        let cfg = PortfolioConfig { probe_conflicts: None, ..race_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[a, b], None);
        assert_eq!(out.result, SolveResult::Unsat);
        let core = s.last_core();
        assert!(core.contains(&a) || core.contains(&b), "core readable after swap: {core:?}");
    }

    #[test]
    fn deterministic_mode_reproduces_winner_stats() {
        let run = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 7);
            let out = Portfolio::new(race_config()).race(&mut s, &[], None);
            (
                out.result,
                out.winner,
                out.epochs,
                out.finishers,
                out.glue_imported,
                out.conflicts_total,
                s.stats().conflicts,
            )
        };
        assert_eq!(run(), run(), "fixed seeds must give bit-identical race outcomes");
    }

    #[test]
    fn caller_budget_exhaustion_reports_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let cfg = PortfolioConfig { probe_conflicts: Some(4), epoch_start: 4, ..race_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], Some(16));
        assert_eq!(out.result, SolveResult::Unknown, "16 conflicts cannot refute PHP(9,8)");
        // The solver is still usable and still correct afterwards.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn wall_clock_mode_agrees_on_the_verdict() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        let cfg = PortfolioConfig { deterministic: false, ..race_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Unsat);
        assert!(out.finishers >= 1);
    }

    #[test]
    fn glue_sharing_imports_losers_clauses() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8);
        let cfg = PortfolioConfig {
            probe_conflicts: None,
            epoch_start: 64, // many ladder rounds: every worker digs in
            epoch_growth: 2,
            ..race_config()
        };
        let out = Portfolio::new(cfg).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Unsat);
        assert!(out.glue_imported > 0, "losers of a long race must contribute glue");
    }

    #[test]
    fn adopt_winner_keeps_the_winning_config_and_stays_sound() {
        let race = |adopt: bool| {
            let mut s = Solver::new();
            pigeonhole(&mut s, 7);
            let base = s.config().clone();
            let cfg = PortfolioConfig { adopt_winner: adopt, ..race_config() };
            let out = Portfolio::new(cfg).race(&mut s, &[], None);
            assert_eq!(out.result, SolveResult::Unsat);
            assert!(out.raced);
            // The solver must answer follow-up queries correctly under
            // whichever configuration it kept.
            let extra = Lit::pos(s.new_var());
            s.add_clause([extra]);
            assert!(s.solve().is_unsat(), "UNSAT db stays UNSAT after the swap");
            (out.winner.worker, s.config().clone(), base)
        };
        let (winner, kept, base) = race(true);
        if winner == 0 {
            assert_eq!(kept, base, "a parent-config win adopts nothing");
        } else {
            assert_ne!(kept, base, "a jittered win must keep the jittered config");
            assert_eq!(kept, worker_config(&base, race_config().seed, winner));
        }
        let (_, restored, base) = race(false);
        assert_eq!(restored, base, "adopt off always restores the caller's config");
        // Adoption is itself deterministic: same race, same kept config.
        assert_eq!(race(true).1, race(true).1);
    }

    #[test]
    fn worker_configs_are_diverse_and_deterministic() {
        let base = SolverConfig::default();
        let a = worker_config(&base, 42, 0);
        assert_eq!(a, base, "worker 0 keeps the parent configuration");
        let b = worker_config(&base, 42, 1);
        let c = worker_config(&base, 42, 2);
        assert_ne!(b.var_decay, c.var_decay);
        assert_ne!(b.phase_jitter_seed, c.phase_jitter_seed);
        assert_eq!(b, worker_config(&base, 42, 1), "pure function of (seed, worker)");
    }

    fn cube_config() -> PortfolioConfig {
        PortfolioConfig { cube_depth: 2, cube_candidates: 16, ..race_config() }
    }

    #[test]
    fn cube_race_reaches_the_single_solver_unsat_verdict() {
        let mut single = Solver::new();
        pigeonhole(&mut single, 7);
        let mut raced = single.clone();
        assert!(single.solve().is_unsat());
        let out = Portfolio::new(cube_config()).race(&mut raced, &[], None);
        assert_eq!(out.result, SolveResult::Unsat);
        assert!(out.raced);
        assert_eq!(out.cubes_raced, 4, "depth 2 splits into 2^2 cubes");
        // The parent survives an all-UNSAT conquest and stays usable.
        assert!(raced.solve().is_unsat());
    }

    #[test]
    fn cube_race_sat_leaves_a_readable_model() {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..64).map(|_| Lit::pos(s.new_var())).collect();
        for w in vars.windows(2) {
            s.add_clause([w[0], w[1]]);
            s.add_clause([!w[0], !w[1]]);
        }
        let cfg = PortfolioConfig { probe_conflicts: None, ..cube_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Sat);
        assert!(out.cubes_raced > 0, "an unprobed hard-looking query must cube");
        let m: Vec<bool> = vars.iter().map(|&l| s.value(l).expect("assigned")).collect();
        for w in m.windows(2) {
            assert_ne!(w[0], w[1], "model must satisfy the alternation chain");
        }
    }

    #[test]
    fn cube_race_merges_assumption_cores() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([!a, c]);
        s.add_clause([!b, !c]);
        pigeonhole(&mut s, 6); // padding so the race actually cubes
        let cfg = PortfolioConfig { probe_conflicts: None, ..cube_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[a, b], None);
        assert_eq!(out.result, SolveResult::Unsat);
        let core = s.last_core();
        assert!(!core.is_empty(), "merged core must not be empty");
        assert!(
            core.iter().all(|l| *l == a || *l == b),
            "merged core only mentions the original assumptions: {core:?}"
        );
    }

    #[test]
    fn cube_race_is_deterministic() {
        let run = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 7);
            let out = Portfolio::new(cube_config()).race(&mut s, &[], None);
            (
                out.result,
                out.winner,
                out.epochs,
                out.finishers,
                out.glue_imported,
                out.conflicts_total,
                out.cubes_raced,
                s.stats().conflicts,
            )
        };
        assert_eq!(run(), run(), "fixed seeds must give bit-identical cube races");
    }

    #[test]
    fn wall_clock_mode_ignores_cube_depth() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        let cfg = PortfolioConfig { deterministic: false, ..cube_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], None);
        assert_eq!(out.result, SolveResult::Unsat);
        assert_eq!(out.cubes_raced, 0, "cube scheduling requires the deterministic ladder");
    }

    #[test]
    fn cube_race_budget_exhaustion_reports_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let cfg = PortfolioConfig { probe_conflicts: Some(4), epoch_start: 4, ..cube_config() };
        let out = Portfolio::new(cfg).race(&mut s, &[], Some(16));
        assert_eq!(out.result, SolveResult::Unknown, "16 conflicts cannot refute PHP(9,8)");
        // The parent is restored and still correct afterwards.
        assert!(s.solve().is_unsat());
    }
}
