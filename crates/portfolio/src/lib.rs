//! # genfv-portfolio — raced solver configurations over cloned clause
//! databases
//!
//! SAT step queries dominate the wall clock of the GenAI-augmented
//! verification flows, and their cost is *noisy*: identical CNF explored
//! under slightly different heuristics shows 5-10× conflict swings on
//! parity-style obligations. This crate turns that variance from a tax
//! into an asset: a [`Portfolio`] clones a loaded [`genfv_sat::Solver`]
//! (a flat memcpy of the clause arena — no re-encoding) across N worker
//! threads, gives each clone a deterministically-jittered
//! [`genfv_sat::SolverConfig`] (`var_decay`, `restart_base`, restart
//! policy, phase jitter — see [`worker_config`]), races them on the same
//! assumption query, and keeps the first winner.
//!
//! ## Soundness of the clause-database clone
//!
//! Every worker starts from a byte-identical clone of the parent's clause
//! database, so all workers decide the *same formula*; SAT/UNSAT answers
//! are therefore interchangeable, and any model or assumption core the
//! winner reports is valid for the parent. Clauses a worker *learns*
//! during the race are derived by resolution from clauses already in its
//! database — they are logical consequences of the shared formula,
//! independent of the assumptions in force — so importing a sibling's
//! learnt glue clauses ([`genfv_sat::Solver::import_learnt`]) into the
//! winner before it replaces the parent preserves equivalence while
//! carrying every worker's discoveries forward to the next query.
//!
//! ## Scheduling disciplines
//!
//! * **Probe first** ([`PortfolioConfig::probe_conflicts`]): the parent
//!   solver runs the query alone under a small conflict budget. Most
//!   queries finish inside the probe, costing *zero* overhead versus a
//!   single solver; only queries that blow the budget — exactly the
//!   variance-prone tail the portfolio exists for — are raced.
//! * **Deterministic epochs** ([`PortfolioConfig::deterministic`] =
//!   `true`, the default): workers run in lock-step conflict-budget
//!   epochs that grow geometrically. Threads still run in parallel, but
//!   the winner is chosen by a pure function of the workers' results
//!   (fewest conflicts, ties to the lowest index), so fixed seeds give
//!   bit-reproducible winner statistics — and a reproducible solver state
//!   for every query that follows.
//! * **Wall-clock race** (`deterministic = false`): every worker gets the
//!   full budget at once and the first verdict over the first-winner
//!   channel cancels the rest through a shared interrupt flag
//!   ([`genfv_sat::Solver::set_interrupt`]). Lowest latency, but the
//!   winner's identity (and therefore its statistics) depends on OS
//!   scheduling.
//!
//! ## Picking worker counts
//!
//! Workers multiply CPU use for the raced queries only. 3-4 workers
//! capture most of the variance win (the jitter table cycles through the
//! highest-leverage knobs first); beyond ~6 the marginal worker mostly
//! duplicates an existing configuration's behaviour. When the portfolio
//! runs inside an already-parallel stage (e.g. the sharded candidate
//! validator), keep `workers × shards` within the machine's core count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod race;

pub use race::{worker_config, Portfolio, PortfolioConfig, RaceOutcome, WorkerStats};
