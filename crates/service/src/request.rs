//! Typed job requests, streaming events, and final reports.
//!
//! A [`JobRequest`] names a design ([`DesignInput`]), a flow
//! ([`CorpusMode`]), and optionally a language model; submitting one to a
//! `VerificationService` yields a [`JobHandle`](crate::JobHandle) whose
//! event stream moves through [`JobEvent::Queued`] →
//! [`JobEvent::Started`] → per-target [`JobEvent::TargetVerdict`]s →
//! [`JobEvent::Done`] (or [`JobEvent::Failed`] at any point after
//! `Queued`).

use genfv_core::{CorpusMode, Error, FlowReport, OptStats, PreparedDesign, TargetOutcome};
use genfv_genai::LanguageModel;
use std::fmt;
use std::time::Duration;

/// Opaque identifier of a submitted job, unique per service instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// The design a job verifies: already-prepared, or raw sources the
/// service worker prepares (and caches) on first sight.
#[derive(Clone, Debug)]
pub enum DesignInput {
    /// An elaborated design; preparation cost already paid by the caller.
    Prepared(Box<PreparedDesign>),
    /// Raw sources; the worker parses/elaborates/compiles them, reporting
    /// failures as [`JobEvent::Failed`] with the typed error.
    Source {
        /// Design name (carried into reports and errors).
        name: String,
        /// RTL source.
        rtl: String,
        /// Natural-language specification (prompt input).
        spec: String,
        /// `(name, sva)` target properties.
        targets: Vec<(String, String)>,
    },
}

/// FNV-1a over a byte string, seeded by `h`.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ 0xff
}

impl DesignInput {
    /// The design name.
    pub fn name(&self) -> &str {
        match self {
            DesignInput::Prepared(d) => &d.name,
            DesignInput::Source { name, .. } => name,
        }
    }

    /// Content hash over name, RTL, spec, and target texts — the session
    /// cache key. Both variants hash the same fields, so submitting a
    /// design as [`DesignInput::Source`] and later as
    /// [`DesignInput::Prepared`] (or vice versa) hits the same cache
    /// entry.
    pub fn design_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        match self {
            DesignInput::Prepared(d) => {
                h = fnv(h, d.name.as_bytes());
                h = fnv(h, d.rtl.as_bytes());
                h = fnv(h, d.spec.as_bytes());
                for t in &d.targets {
                    h = fnv(h, t.name.as_bytes());
                    h = fnv(h, t.sva.as_bytes());
                }
            }
            DesignInput::Source { name, rtl, spec, targets } => {
                h = fnv(h, name.as_bytes());
                h = fnv(h, rtl.as_bytes());
                h = fnv(h, spec.as_bytes());
                for (tn, sva) in targets {
                    h = fnv(h, tn.as_bytes());
                    h = fnv(h, sva.as_bytes());
                }
            }
        }
        h
    }
}

/// A typed verification request.
///
/// Follows the workspace builder convention: [`JobRequest::new`] for the
/// default (Flow 2, no model), then `with_*` refinements. GenAI modes
/// ([`CorpusMode::needs_model`]) must attach a model with
/// [`JobRequest::with_llm`] or submission fails with
/// `ServiceError::NoModel`.
pub struct JobRequest {
    /// The design to verify.
    pub design: DesignInput,
    /// Which flow to run.
    pub mode: CorpusMode,
    /// Language model for GenAI flows (`None` for `Baseline`).
    pub llm: Option<Box<dyn LanguageModel + Send>>,
}

impl JobRequest {
    /// A Flow-2 request for `design` with no model attached yet.
    pub fn new(design: DesignInput) -> Self {
        JobRequest { design, mode: CorpusMode::Flow2, llm: None }
    }

    /// This request running `mode` instead.
    pub fn with_mode(mut self, mode: CorpusMode) -> Self {
        self.mode = mode;
        self
    }

    /// This request prompting `llm` (required for GenAI modes).
    pub fn with_llm(mut self, llm: impl LanguageModel + Send + 'static) -> Self {
        self.llm = Some(Box::new(llm));
        self
    }
}

impl fmt::Debug for JobRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobRequest")
            .field("design", &self.design.name())
            .field("mode", &self.mode)
            .field("llm", &self.llm.as_ref().map(|l| l.name().to_string()))
            .finish()
    }
}

/// One element of a job's streamed event sequence.
#[derive(Clone, Debug)]
pub enum JobEvent {
    /// The job entered the submission queue.
    Queued {
        /// The job.
        job: JobId,
        /// Queue depth right after enqueue (this job included).
        depth: usize,
    },
    /// A worker picked the job up.
    Started {
        /// The job.
        job: JobId,
        /// The job was drained alongside an earlier same-design job and
        /// runs on that job's hot session capital.
        batched: bool,
        /// The design's warm-session capital was already cached.
        cache_hit: bool,
    },
    /// One target finished.
    TargetVerdict {
        /// The job.
        job: JobId,
        /// Target property name.
        target: String,
        /// The verdict.
        outcome: TargetOutcome,
    },
    /// The job finished; terminal.
    Done {
        /// The job.
        job: JobId,
        /// The full report (also returned by `JobHandle::wait`).
        report: Box<JobReport>,
    },
    /// The job failed before producing a report; terminal.
    Failed {
        /// The job.
        job: JobId,
        /// What went wrong.
        error: Error,
    },
}

impl JobEvent {
    /// Whether this event ends the job's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobEvent::Done { .. } | JobEvent::Failed { .. })
    }
}

/// Final result of a completed job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Design name.
    pub design: String,
    /// Cache key of the design (see [`DesignInput::design_hash`]).
    pub design_hash: u64,
    /// The flow's own report (verdicts, lemmas, metrics, event log).
    pub flow: FlowReport,
    /// The design's warm-session capital was already cached when the job
    /// started.
    pub cache_hit: bool,
    /// The job ran batched behind an earlier same-design job.
    pub batched: bool,
    /// Time spent waiting in the submission queue.
    pub queue_wait: Duration,
    /// Time spent running the flow.
    pub run_time: Duration,
    /// Per-job trace and metrics snapshot, present when the service runs
    /// with observability on ([`crate::ServiceConfig::with_obs`]): the
    /// job's span tree down to individual `solve.*` calls, exportable as
    /// Chrome `trace_event` JSON via [`genfv_obs::ObsReport::chrome_json`].
    pub obs: Option<genfv_obs::ObsReport>,
}

impl JobReport {
    /// What the prepare-time netlist optimization pipeline did to this
    /// job's design — node counts before/after, per-pass rewrite counts,
    /// states dropped by stuck-at folding and cone-of-influence
    /// reduction. Shorthand for `self.flow.opt`.
    pub fn opt(&self) -> &OptStats {
        &self.flow.opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_content_keyed_across_variants() {
        let src = DesignInput::Source {
            name: "counter".into(),
            rtl: "module counter (input clk, rst, output logic [7:0] c);\n  always_ff @(posedge clk) begin\n    if (rst) c <= '0; else c <= c + 8'd1;\n  end\nendmodule\n".into(),
            spec: "a counter".into(),
            targets: vec![("t".into(), "c == c".into())],
        };
        let DesignInput::Source { name, rtl, spec, targets } = src.clone() else { unreachable!() };
        let prepared = DesignInput::Prepared(Box::new(
            PreparedDesign::new(name, rtl, spec, &targets).unwrap(),
        ));
        assert_eq!(src.design_hash(), prepared.design_hash());

        let other = DesignInput::Source {
            name: "counter2".into(),
            rtl: String::new(),
            spec: String::new(),
            targets: vec![],
        };
        assert_ne!(src.design_hash(), other.design_hash());
    }

    #[test]
    fn request_builders_chain() {
        let req = JobRequest::new(DesignInput::Source {
            name: "x".into(),
            rtl: String::new(),
            spec: String::new(),
            targets: vec![],
        })
        .with_mode(CorpusMode::Baseline);
        assert_eq!(req.mode, CorpusMode::Baseline);
        assert!(req.llm.is_none());
        assert!(format!("{req:?}").contains("\"x\""));
    }
}
