//! # genfv-service — verification as a service
//!
//! A front end that turns the `genfv-core` flows into a long-running
//! service: callers submit typed [`JobRequest`]s and get back
//! [`JobHandle`]s that stream [`JobEvent`]s and resolve to a final
//! [`JobReport`] — instead of calling a flow function and blocking.
//!
//! ```text
//!  submit / try_submit          workers (persistent threads)
//!  ┌──────────────┐   ┌─────────────────────────────────────────┐
//!  │ bounded queue│──▶│ batcher: drain co-pending same-design   │
//!  │ (backpressure│   │ jobs behind one leader                  │
//!  │  = QueueFull)│   │   │                                     │
//!  └──────────────┘   │   ▼                                     │
//!                     │ design cache (LRU): PreparedDesign +    │
//!                     │ SessionSeed (template, clean depths)    │
//!                     │   │                                     │
//!                     │   ▼                                     │
//!                     │ run flow on warm sessions ──▶ events,   │
//!                     │ JobReport; seed republished on drop     │
//!                     └─────────────────────────────────────────┘
//! ```
//!
//! **Why a service, not a function call?** The paper's workload is
//! repeat traffic: the same design comes back with a tweaked spec, a new
//! target, another model, or simply again (CI). Almost all of the cost
//! of a small verification job is *capital* — parsing/elaborating the
//! RTL, bit-blasting the transition template, discharging base cases —
//! and all of it is reusable across requests for the same design. The
//! service keeps that capital in a design-hash-keyed LRU cache
//! ([`ServiceConfig::with_cache_entries`] /
//! [`ServiceConfig::with_cache_bytes`]) and batches co-pending
//! same-design jobs onto one worker, so repeat traffic starts warm:
//! sessions adopt the cached `genfv_mc::SessionSeed`, reuse its
//! transition template, and skip base cases already proven clean. The
//! `e11_service` benchmark measures the effect; the
//! `service_differential` suite pins that verdicts never change.
//!
//! **Backpressure is typed.** The submission queue is bounded:
//! [`VerificationService::try_submit`] rejects over-capacity requests
//! with [`genfv_core::ServiceError::QueueFull`] (handing the request
//! back), [`VerificationService::submit`] blocks instead. All failures
//! — rejection, preparation errors, worker loss — surface as
//! [`genfv_core::Error`] values, never panics in the caller.
//!
//! [`run_corpus`] is the synchronous convenience wrapper: one job per
//! design, reports in submission order — the API the `genfv-core` corpus
//! scheduler used to provide, now backed by the same service machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod corpus;
mod request;
mod service;

pub use cache::CacheEntry;
pub use corpus::run_corpus;
pub use request::{DesignInput, JobEvent, JobId, JobReport, JobRequest};
pub use service::{JobHandle, ServiceConfig, ServiceStats, SubmitRejected, VerificationService};

pub use genfv_core::{CorpusConfig, CorpusMode};
pub use genfv_obs::{Accumulate, Obs, ObsConfig, ObsReport};
