//! Design-hash-keyed LRU cache of warm session capital.
//!
//! Preparing a design (parse → elaborate → compile targets) and warming
//! its first [`genfv_mc::ProofSession`] (bit-blasting the transition
//! template, probing base cases) is the dominant cost of small repeat
//! requests. The service keeps both behind one key — the request's
//! [`design_hash`](crate::DesignInput::design_hash) — as a
//! [`CacheEntry`]: the shared [`PreparedDesign`] and the design's
//! [`SessionSeed`] (template + clean-depth pool, see `genfv-mc`). Repeat
//! traffic skips preparation entirely and every session it starts adopts
//! the seed, reusing the template and the already-proven base-case
//! depths.
//!
//! Eviction is plain LRU under two budgets: entry count and approximate
//! resident bytes ([`SessionSeed::approx_bytes`]). A zero entry budget
//! disables caching (the cold-service configuration benchmarked by
//! `e11_service`).

use genfv_core::PreparedDesign;
use genfv_mc::SessionSeed;
use std::collections::HashMap;
use std::sync::Arc;

/// Warm capital for one design.
#[derive(Clone)]
pub struct CacheEntry {
    /// The elaborated design (skips re-preparation).
    pub design: Arc<PreparedDesign>,
    /// Cross-session warm-start capital (template + clean depths).
    pub seed: Arc<SessionSeed>,
}

/// LRU cache of [`CacheEntry`]s keyed by design hash.
pub(crate) struct DesignCache {
    entries: HashMap<u64, CacheEntry>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
    max_entries: usize,
    max_bytes: usize,
    evictions: u64,
}

impl DesignCache {
    pub(crate) fn new(max_entries: usize, max_bytes: usize) -> Self {
        DesignCache {
            entries: HashMap::new(),
            order: Vec::new(),
            max_entries,
            max_bytes,
            evictions: 0,
        }
    }

    /// Looks `hash` up, marking it most-recently used.
    pub(crate) fn get(&mut self, hash: u64) -> Option<CacheEntry> {
        let entry = self.entries.get(&hash)?.clone();
        self.touch(hash);
        Some(entry)
    }

    /// Inserts (or refreshes) `hash`, then evicts LRU entries until both
    /// budgets hold. The just-inserted entry is never evicted by its own
    /// insertion, even if it alone exceeds the byte budget.
    pub(crate) fn insert(&mut self, hash: u64, entry: CacheEntry) {
        if self.max_entries == 0 {
            return;
        }
        self.entries.insert(hash, entry);
        self.touch(hash);
        while self.order.len() > 1
            && (self.order.len() > self.max_entries || self.resident_bytes() > self.max_bytes)
        {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    fn touch(&mut self, hash: u64) {
        self.order.retain(|&h| h != hash);
        self.order.push(hash);
    }

    fn resident_bytes(&self) -> usize {
        self.entries.values().map(|e| e.seed.approx_bytes()).sum()
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Keys from least- to most-recently used (tests).
    #[cfg(test)]
    pub(crate) fn lru_order(&self) -> &[u64] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CacheEntry {
        let design = Arc::new(
            PreparedDesign::new(
                "d",
                "module d (input clk, output logic q);\n  always_ff @(posedge clk) q <= ~q;\nendmodule\n",
                "toggle",
                &[],
            )
            .unwrap(),
        );
        let seed = SessionSeed::for_design(&design.ctx, &design.ts);
        CacheEntry { design, seed }
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = DesignCache::new(2, usize::MAX);
        c.insert(1, entry());
        c.insert(2, entry());
        assert_eq!(c.lru_order(), &[1, 2]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        assert_eq!(c.lru_order(), &[2, 1]);
        c.insert(3, entry());
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn byte_budget_evicts_but_keeps_newest() {
        // Every entry's seed is non-empty-template-free but approx_bytes
        // counts clean entries; an empty seed still reports 0 bytes, so
        // force eviction purely via the entry budget being generous and
        // the byte budget being zero: the newest entry must survive.
        let mut c = DesignCache::new(10, 0);
        c.insert(1, entry());
        c.insert(2, entry());
        assert!(c.len() >= 1, "newest insertion always survives");
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_entry_budget_disables_cache() {
        let mut c = DesignCache::new(0, usize::MAX);
        c.insert(1, entry());
        assert_eq!(c.len(), 0);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = DesignCache::new(2, usize::MAX);
        c.insert(1, entry());
        c.insert(2, entry());
        c.insert(1, entry());
        assert_eq!(c.lru_order(), &[2, 1]);
    }
}
