//! The verification service: bounded queue, worker pool, warm-session
//! cache, same-design batching.

use crate::cache::{CacheEntry, DesignCache};
use crate::request::{DesignInput, JobEvent, JobId, JobReport, JobRequest};
use genfv_core::{
    run_baseline, run_combined, run_flow1, run_flow2, CorpusMode, Error, FlowConfig, OptConfig,
    PreparedDesign, ServiceError,
};
use genfv_mc::{CheckConfig, EngineMode, PortfolioConfig, SessionSeed, UnrollMode};
use genfv_obs::{
    prom_counter, prom_gauge, prom_histogram, Accumulate, AtomicHistogram, HistogramSnapshot,
    MetricsSnapshot, Obs, ObsConfig,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service configuration.
///
/// Follows the workspace builder convention: [`Default`] then `with_*`.
/// The flow-level `with_*` helpers ([`ServiceConfig::with_check`],
/// [`ServiceConfig::with_portfolio`], [`ServiceConfig::with_engine`],
/// [`ServiceConfig::with_unroll_mode`]) delegate to the embedded
/// [`FlowConfig`], so one builder chain configures the whole stack.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Submission-queue capacity; `try_submit` rejects beyond it with
    /// [`ServiceError::QueueFull`], `submit` blocks.
    pub queue_capacity: usize,
    /// Warm-session cache entry budget (0 disables caching).
    pub cache_entries: usize,
    /// Warm-session cache approximate byte budget.
    pub cache_bytes: usize,
    /// Batch co-pending same-design jobs onto one worker so they ride the
    /// hot session capital consecutively.
    pub batching: bool,
    /// Default flow mode for jobs (overridable per request).
    pub mode: CorpusMode,
    /// Flow configuration shared by every job.
    pub flow: FlowConfig,
    /// Per-job observability mode: [`ObsConfig::Off`] (default) skips all
    /// trace recording; `Full`/`Deterministic` give every job a fresh
    /// [`Obs`] handle whose report rides on [`JobReport::obs`] and whose
    /// metrics fold into the service-wide [`ServiceStats`]. The queue-wait
    /// histogram is recorded regardless of this setting.
    pub obs: ObsConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            cache_entries: 32,
            cache_bytes: 64 << 20,
            batching: true,
            mode: CorpusMode::Flow2,
            flow: FlowConfig::default(),
            obs: ObsConfig::Off,
        }
    }
}

impl ServiceConfig {
    /// This configuration with `workers` threads (0 = one per core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// This configuration with a submission queue of `capacity` jobs.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// This configuration caching at most `entries` designs (0 disables
    /// the warm-session cache — every job re-prepares and starts cold).
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// This configuration with an approximate cache byte budget.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// This configuration with same-design batching on or off.
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// This configuration defaulting jobs to `mode`.
    pub fn with_mode(mut self, mode: CorpusMode) -> Self {
        self.mode = mode;
        self
    }

    /// This configuration with `flow` as every job's flow configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// This configuration with `check` as the target-proof settings.
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.flow = self.flow.with_check(check);
        self
    }

    /// This configuration racing every session query over `portfolio`.
    pub fn with_portfolio(mut self, portfolio: PortfolioConfig) -> Self {
        self.flow = self.flow.with_portfolio(portfolio);
        self
    }

    /// This configuration answering queries with `engine`.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.flow = self.flow.with_engine(engine);
        self
    }

    /// This configuration encoding session frames in `mode`.
    pub fn with_unroll_mode(mut self, mode: UnrollMode) -> Self {
        self.flow = self.flow.with_unroll_mode(mode);
        self
    }

    /// This configuration preparing [`DesignInput::Source`] jobs with
    /// `opt` (also folded into the warm-capital cache key).
    pub fn with_opt(mut self, opt: OptConfig) -> Self {
        self.flow = self.flow.with_opt(opt);
        self
    }

    /// This configuration recording per-job traces and metrics in `mode`
    /// (see [`ServiceConfig::obs`]).
    pub fn with_obs(mut self, mode: ObsConfig) -> Self {
        self.obs = mode;
        self
    }
}

/// Point-in-time service counters (see
/// [`VerificationService::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that delivered a [`JobReport`].
    pub completed: u64,
    /// Jobs that ended in [`JobEvent::Failed`].
    pub failed: u64,
    /// Submissions rejected (backpressure, shutdown, missing model).
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs that found their design's warm capital cached (batched
    /// followers included).
    pub cache_hits: u64,
    /// Jobs that had to prepare their design cold.
    pub cache_misses: u64,
    /// Cache entries evicted under the entry/byte budgets.
    pub cache_evictions: u64,
    /// Designs currently cached.
    pub cache_entries: usize,
    /// Jobs that ran batched behind an earlier same-design job.
    pub batched_jobs: u64,
    /// Base-case solver calls skipped via seeded clean depths, summed
    /// over completed jobs.
    pub clean_seed_hits: u64,
    /// Sessions that adopted an already-built transition template, summed
    /// over completed jobs.
    pub templates_reused: u64,
    /// Expression nodes removed by the prepare-time optimization
    /// pipeline, summed over cold (cache-miss) prepares.
    pub opt_nodes_removed: u64,
    /// State registers dropped (stuck-at folding plus cone-of-influence
    /// reduction), summed over cold prepares.
    pub opt_states_dropped: u64,
    /// Queries answered by cube-and-conquer splitting, summed over
    /// completed jobs.
    pub cube_splits: u64,
    /// Learnt clauses replayed from cached clause pools into job
    /// sessions, summed over completed jobs.
    pub pool_clauses_imported: u64,
    /// Learnt clauses job sessions published into cached clause pools,
    /// summed over completed jobs.
    pub pool_clauses_exported: u64,
    /// Pool imports that yielded at least one clause, summed over
    /// completed jobs.
    pub pool_hits: u64,
    /// Clause-pool entries evicted under pool byte budgets, summed over
    /// completed jobs.
    pub pool_evictions: u64,
    /// Submit→start wait per job, log₂-bucketed in microseconds. Recorded
    /// for every job regardless of [`ServiceConfig::obs`] — this is the
    /// latency the flow-level `run_time` never sees.
    pub queue_wait: HistogramSnapshot,
    /// Solver metrics (per-kind solve latency/conflict histograms and
    /// counters) folded in from every completed job's obs report. Empty
    /// unless the service runs with observability on.
    pub metrics: MetricsSnapshot,
}

impl ServiceStats {
    /// Renders every counter and histogram in Prometheus text exposition
    /// format (`genfv_*` namespace; histogram times in seconds). Includes
    /// the queue-wait histogram and, when observability is on, the
    /// per-query-kind solve-latency histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        prom_counter(&mut out, "genfv_jobs_submitted_total", "", self.submitted);
        prom_counter(&mut out, "genfv_jobs_completed_total", "", self.completed);
        prom_counter(&mut out, "genfv_jobs_failed_total", "", self.failed);
        prom_counter(&mut out, "genfv_jobs_rejected_total", "", self.rejected);
        prom_counter(&mut out, "genfv_jobs_batched_total", "", self.batched_jobs);
        prom_gauge(&mut out, "genfv_queue_depth", "", self.queue_depth as f64);
        prom_counter(&mut out, "genfv_cache_hits_total", "", self.cache_hits);
        prom_counter(&mut out, "genfv_cache_misses_total", "", self.cache_misses);
        prom_counter(&mut out, "genfv_cache_evictions_total", "", self.cache_evictions);
        prom_gauge(&mut out, "genfv_cache_entries", "", self.cache_entries as f64);
        prom_counter(&mut out, "genfv_clean_seed_hits_total", "", self.clean_seed_hits);
        prom_counter(&mut out, "genfv_templates_reused_total", "", self.templates_reused);
        prom_counter(&mut out, "genfv_opt_nodes_removed_total", "", self.opt_nodes_removed);
        prom_counter(&mut out, "genfv_opt_states_dropped_total", "", self.opt_states_dropped);
        prom_counter(&mut out, "genfv_cube_splits_total", "", self.cube_splits);
        prom_counter(&mut out, "genfv_pool_clauses_imported_total", "", self.pool_clauses_imported);
        prom_counter(&mut out, "genfv_pool_clauses_exported_total", "", self.pool_clauses_exported);
        prom_counter(&mut out, "genfv_pool_hits_total", "", self.pool_hits);
        prom_counter(&mut out, "genfv_pool_evictions_total", "", self.pool_evictions);
        prom_histogram(&mut out, "genfv_queue_wait_seconds", "", &self.queue_wait, 1e-6);
        self.metrics.render_prometheus(&mut out);
        out
    }
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicUsize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batched_jobs: AtomicU64,
    clean_seed_hits: AtomicU64,
    templates_reused: AtomicU64,
    opt_nodes_removed: AtomicU64,
    opt_states_dropped: AtomicU64,
    cube_splits: AtomicU64,
    pool_clauses_imported: AtomicU64,
    pool_clauses_exported: AtomicU64,
    pool_hits: AtomicU64,
    pool_evictions: AtomicU64,
    queue_wait: AtomicHistogram,
    /// Per-job obs metrics folded service-wide (empty with obs off).
    metrics: Mutex<MetricsSnapshot>,
}

// Merging two services' point-in-time stats (e.g. sharded deployments):
// counters and sampled gauges sum, histograms and solver metrics fold.
genfv_obs::impl_accumulate!(ServiceStats {
    add: [
        submitted,
        completed,
        failed,
        rejected,
        queue_depth,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_entries,
        batched_jobs,
        clean_seed_hits,
        templates_reused,
        opt_nodes_removed,
        opt_states_dropped,
        cube_splits,
        pool_clauses_imported,
        pool_clauses_exported,
        pool_hits,
        pool_evictions,
    ],
    merge: [queue_wait, metrics],
});

/// A queued unit of work.
struct Job {
    id: JobId,
    input: DesignInput,
    hash: u64,
    mode: CorpusMode,
    llm: Option<Box<dyn genfv_genai::LanguageModel + Send>>,
    tx: mpsc::Sender<JobEvent>,
    enqueued_at: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signals workers that a job (or shutdown) is available.
    job_ready: Condvar,
    /// Signals blocked `submit` calls that queue space opened up.
    space: Condvar,
    cache: Mutex<DesignCache>,
    stats: AtomicStats,
    next_id: AtomicU64,
    config: ServiceConfig,
}

/// A rejected submission: the request handed back untouched plus the
/// typed reason ([`ServiceError::QueueFull`] for backpressure,
/// [`ServiceError::Closed`], or [`ServiceError::NoModel`]).
#[derive(Debug)]
pub struct SubmitRejected {
    /// The request, returned so the caller can retry or re-route it.
    pub request: JobRequest,
    /// Why it was rejected.
    pub error: Error,
}

impl std::fmt::Display for SubmitRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "submission rejected: {}", self.error)
    }
}

impl std::error::Error for SubmitRejected {}

/// Streaming view of one submitted job.
///
/// Events arrive in a fixed order: [`JobEvent::Queued`], then
/// [`JobEvent::Started`], then one [`JobEvent::TargetVerdict`] per
/// target, then the terminal [`JobEvent::Done`] — or a terminal
/// [`JobEvent::Failed`] any time after `Queued`.
pub struct JobHandle {
    id: JobId,
    rx: mpsc::Receiver<JobEvent>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The job this handle streams.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks for the next event; `None` once the stream is exhausted.
    pub fn next_event(&self) -> Option<JobEvent> {
        self.rx.recv().ok()
    }

    /// The next event if one is already pending (non-blocking).
    pub fn try_next_event(&self) -> Option<JobEvent> {
        self.rx.try_recv().ok()
    }

    /// Drains the stream to its terminal event and returns the report.
    ///
    /// # Errors
    /// The [`JobEvent::Failed`] error, or [`ServiceError::WorkerLost`] if
    /// the stream ended without a terminal event (service dropped with
    /// the job still queued).
    pub fn wait(self) -> Result<JobReport, Error> {
        while let Some(event) = self.next_event() {
            match event {
                JobEvent::Done { report, .. } => return Ok(*report),
                JobEvent::Failed { error, .. } => return Err(error),
                _ => {}
            }
        }
        Err(ServiceError::WorkerLost {
            message: format!("{} lost its event stream before finishing", self.id),
        }
        .into())
    }
}

/// The verification-as-a-service front end. See the [crate docs](crate).
pub struct VerificationService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

// `SubmitRejected` is deliberately large: it hands the whole (unboxable,
// caller-owned) request back so nothing is lost on rejection.
#[allow(clippy::result_large_err)]
impl VerificationService {
    /// Starts a service with `config.workers` persistent worker threads.
    pub fn new(config: ServiceConfig) -> Self {
        Self::build(config, true)
    }

    /// Builds the service, optionally without spawning workers — unit
    /// tests drive the worker loop inline for determinism.
    fn build(config: ServiceConfig, spawn_workers: bool) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            job_ready: Condvar::new(),
            space: Condvar::new(),
            cache: Mutex::new(DesignCache::new(config.cache_entries, config.cache_bytes)),
            stats: AtomicStats::default(),
            next_id: AtomicU64::new(0),
            config: config.clone(),
        });
        let worker_count = if spawn_workers {
            if config.workers == 0 {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
            } else {
                config.workers
            }
        } else {
            0
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("genfv-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        VerificationService { shared, workers }
    }

    /// Submits a job, blocking while the queue is full.
    ///
    /// # Errors
    /// [`ServiceError::Closed`] after shutdown, [`ServiceError::NoModel`]
    /// if a GenAI-mode request carries no model. Never rejects with
    /// `QueueFull` — that is [`VerificationService::try_submit`]'s typed
    /// backpressure.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, SubmitRejected> {
        self.enqueue(request, true)
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    /// Everything [`VerificationService::submit`] rejects, plus
    /// [`ServiceError::QueueFull`] when the bounded queue is at capacity
    /// — the caller gets the request back and decides whether to retry,
    /// shed, or fall back to the blocking `submit`.
    pub fn try_submit(&self, request: JobRequest) -> Result<JobHandle, SubmitRejected> {
        self.enqueue(request, false)
    }

    fn enqueue(&self, request: JobRequest, block: bool) -> Result<JobHandle, SubmitRejected> {
        let mode = request.mode;
        if mode.needs_model() && request.llm.is_none() {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let design = request.design.name().to_string();
            return Err(SubmitRejected { request, error: ServiceError::NoModel { design }.into() });
        }
        let capacity = self.shared.config.queue_capacity;
        let mut q = self.shared.queue.lock().unwrap();
        while !q.closed && q.jobs.len() >= capacity {
            if !block {
                drop(q);
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitRejected {
                    request,
                    error: ServiceError::QueueFull { capacity }.into(),
                });
            }
            q = self.shared.space.wait(q).unwrap();
        }
        if q.closed {
            drop(q);
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitRejected { request, error: ServiceError::Closed.into() });
        }
        let id = JobId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            hash: cache_key(&request.design, &self.shared.config.flow.opt),
            input: request.design,
            mode,
            llm: request.llm,
            tx,
            enqueued_at: Instant::now(),
        };
        let _ = job.tx.send(JobEvent::Queued { job: id, depth: q.jobs.len() + 1 });
        q.jobs.push_back(job);
        self.shared.stats.queue_depth.store(q.jobs.len(), Ordering::Relaxed);
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.shared.job_ready.notify_one();
        Ok(JobHandle { id, rx })
    }

    /// Current counters. Queue depth and cache occupancy are sampled;
    /// everything else is monotone.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        let (evictions, entries) = {
            let cache = self.shared.cache.lock().unwrap();
            (cache.evictions(), cache.len())
        };
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            cache_evictions: evictions,
            cache_entries: entries,
            batched_jobs: s.batched_jobs.load(Ordering::Relaxed),
            clean_seed_hits: s.clean_seed_hits.load(Ordering::Relaxed),
            templates_reused: s.templates_reused.load(Ordering::Relaxed),
            opt_nodes_removed: s.opt_nodes_removed.load(Ordering::Relaxed),
            opt_states_dropped: s.opt_states_dropped.load(Ordering::Relaxed),
            cube_splits: s.cube_splits.load(Ordering::Relaxed),
            pool_clauses_imported: s.pool_clauses_imported.load(Ordering::Relaxed),
            pool_clauses_exported: s.pool_clauses_exported.load(Ordering::Relaxed),
            pool_hits: s.pool_hits.load(Ordering::Relaxed),
            pool_evictions: s.pool_evictions.load(Ordering::Relaxed),
            queue_wait: s.queue_wait.snapshot(),
            metrics: s.metrics.lock().unwrap().clone(),
        }
    }

    /// Stops accepting jobs, drains the queue, and joins the workers.
    /// Also performed on drop.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.closed = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Runs the worker loop on the calling thread until the queue closes
    /// and drains (unit tests drive scheduling deterministically).
    #[cfg(test)]
    fn run_inline(&self) {
        worker_loop(&self.shared);
    }
}

impl Drop for VerificationService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Pulls batches until the queue is closed *and* empty: shutdown drains.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(leader) = q.jobs.pop_front() {
                    let mut batch = vec![leader];
                    if shared.config.batching {
                        let hash = batch[0].hash;
                        let mut rest = VecDeque::with_capacity(q.jobs.len());
                        for job in q.jobs.drain(..) {
                            if job.hash == hash {
                                batch.push(job);
                            } else {
                                rest.push_back(job);
                            }
                        }
                        q.jobs = rest;
                    }
                    shared.stats.queue_depth.store(q.jobs.len(), Ordering::Relaxed);
                    shared.space.notify_all();
                    break batch;
                }
                if q.closed {
                    return;
                }
                q = shared.job_ready.wait(q).unwrap();
            }
        };
        run_batch(shared, batch);
    }
}

/// Resolves the batch's design (cache or cold prepare) and runs each job
/// on the shared warm capital.
fn run_batch(shared: &Shared, batch: Vec<Job>) {
    let hash = batch[0].hash;
    let cached = shared.cache.lock().unwrap().get(hash);
    let leader_hit = cached.is_some();
    let entry = match cached {
        Some(entry) => entry,
        None => {
            let design = match prepare(&batch[0].input, &shared.config.flow.opt) {
                Ok(d) => Arc::new(d),
                Err(error) => {
                    for job in &batch {
                        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                        let _ = job.tx.send(JobEvent::Failed { job: job.id, error: error.clone() });
                    }
                    return;
                }
            };
            shared
                .stats
                .opt_nodes_removed
                .fetch_add(design.opt_stats.nodes_removed() as u64, Ordering::Relaxed);
            shared
                .stats
                .opt_states_dropped
                .fetch_add(design.opt_stats.states_dropped(), Ordering::Relaxed);
            // Salt the seed fingerprint with the opt level so warm capital
            // built over an optimized netlist can never be adopted by a
            // session over the unoptimized one (or vice versa), even
            // though both came from identical sources.
            let seed =
                SessionSeed::for_design_salted(&design.ctx, &design.ts, design.opt.level.salt());
            let entry = CacheEntry { design, seed };
            shared.cache.lock().unwrap().insert(hash, entry.clone());
            entry
        }
    };

    for (pos, job) in batch.into_iter().enumerate() {
        let batched = pos > 0;
        let cache_hit = leader_hit || batched;
        if cache_hit {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if batched {
            shared.stats.batched_jobs.fetch_add(1, Ordering::Relaxed);
        }
        run_job(shared, job, &entry, batched, cache_hit);
    }
}

/// The warm-capital cache key: the design's content hash salted with the
/// optimization level it runs at. [`DesignInput::Prepared`] inputs carry
/// their own level; [`DesignInput::Source`] inputs are prepared at the
/// service-wide level, so differently-configured services (or a
/// `Prepared` submission at a non-default level) key distinct entries and
/// the LRU never mixes optimized and unoptimized sessions.
fn cache_key(input: &DesignInput, service_opt: &OptConfig) -> u64 {
    let salt = match input {
        DesignInput::Prepared(d) => d.opt.level.salt(),
        DesignInput::Source { .. } => service_opt.level.salt(),
    };
    input.design_hash() ^ salt
}

fn prepare(input: &DesignInput, service_opt: &OptConfig) -> Result<PreparedDesign, Error> {
    match input {
        DesignInput::Prepared(d) => Ok((**d).clone()),
        DesignInput::Source { name, rtl, spec, targets } => {
            PreparedDesign::with_opt(name.clone(), rtl.clone(), spec.clone(), targets, service_opt)
        }
    }
}

fn run_job(shared: &Shared, mut job: Job, entry: &CacheEntry, batched: bool, cache_hit: bool) {
    let queue_wait = job.enqueued_at.elapsed();
    shared.stats.queue_wait.record(queue_wait.as_micros().min(u128::from(u64::MAX)) as u64);
    let _ = job.tx.send(JobEvent::Started { job: job.id, batched, cache_hit });

    // Seed only the target-proof sessions: validation clones compile
    // candidate monitors before their sessions exist, so their
    // fingerprints can never match the pristine design's seed anyway.
    let mut flow = shared.config.flow.clone();
    flow.check.seed = Some(Arc::clone(&entry.seed));
    // Each job records into its own trace (if the service runs with
    // observability on) so reports are attributable per job even when
    // workers interleave.
    let obs = Obs::new(shared.config.obs);
    if obs.is_enabled() {
        flow = flow.with_obs(obs.clone());
    }
    let design = &entry.design;

    let started = Instant::now();
    let llm = job.llm.as_deref_mut();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _job_span = obs.span_with("job", || design.name.clone());
        match job.mode {
            CorpusMode::Baseline => run_baseline(design, &flow),
            CorpusMode::Flow1 => run_flow1((**design).clone(), llm.unwrap(), &flow),
            CorpusMode::Flow2 => run_flow2((**design).clone(), llm.unwrap(), &flow),
            CorpusMode::Combined => run_combined((**design).clone(), llm.unwrap(), &flow),
        }
    }));
    let run_time = started.elapsed();

    match outcome {
        Ok(flow_report) => {
            for target in &flow_report.targets {
                let _ = job.tx.send(JobEvent::TargetVerdict {
                    job: job.id,
                    target: target.name.clone(),
                    outcome: target.outcome.clone(),
                });
            }
            let solver = &flow_report.metrics.solver;
            shared.stats.clean_seed_hits.fetch_add(solver.clean_seed_hits, Ordering::Relaxed);
            shared.stats.templates_reused.fetch_add(solver.templates_reused, Ordering::Relaxed);
            shared.stats.cube_splits.fetch_add(solver.cube_splits, Ordering::Relaxed);
            shared
                .stats
                .pool_clauses_imported
                .fetch_add(solver.pool_clauses_imported, Ordering::Relaxed);
            shared
                .stats
                .pool_clauses_exported
                .fetch_add(solver.pool_clauses_exported, Ordering::Relaxed);
            shared.stats.pool_hits.fetch_add(solver.pool_hits, Ordering::Relaxed);
            shared.stats.pool_evictions.fetch_add(solver.pool_evictions, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            let obs_report = obs.report();
            if let Some(r) = &obs_report {
                shared.stats.metrics.lock().unwrap().absorb(&r.metrics);
            }
            let report = JobReport {
                job: job.id,
                design: design.name.clone(),
                design_hash: job.hash,
                flow: flow_report,
                cache_hit,
                batched,
                queue_wait,
                run_time,
                obs: obs_report,
            };
            let _ = job.tx.send(JobEvent::Done { job: job.id, report: Box::new(report) });
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "flow panicked".to_string());
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            let _ = job.tx.send(JobEvent::Failed {
                job: job.id,
                error: ServiceError::WorkerLost { message }.into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTL: &str = r#"
module counter (input clk, rst, output logic [7:0] c);
  always_ff @(posedge clk) begin
    if (rst) c <= '0;
    else c <= c + 8'd1;
  end
endmodule
"#;

    fn source(name: &str, target: &str) -> DesignInput {
        DesignInput::Source {
            name: name.into(),
            rtl: RTL.into(),
            spec: "a free-running counter".into(),
            targets: vec![("t".into(), target.into())],
        }
    }

    fn baseline(input: DesignInput) -> JobRequest {
        JobRequest::new(input).with_mode(CorpusMode::Baseline)
    }

    #[test]
    fn try_submit_backpressure_is_typed_and_deterministic() {
        let svc = VerificationService::build(
            ServiceConfig::default().with_queue_capacity(2),
            false, // no workers: the queue can only fill
        );
        let a = svc.try_submit(baseline(source("a", "c == c"))).unwrap();
        let b = svc.try_submit(baseline(source("b", "c == c"))).unwrap();
        let rejected = svc.try_submit(baseline(source("c", "c == c"))).unwrap_err();
        assert!(rejected.error.is_backpressure(), "{}", rejected.error);
        assert_eq!(rejected.request.design.name(), "c");
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, 2);

        // Drain deterministically on this thread, then both jobs report.
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        assert_eq!(svc.stats().queue_depth, 0);
    }

    #[test]
    fn genai_mode_without_model_is_rejected() {
        let svc = VerificationService::build(ServiceConfig::default(), false);
        let rejected = svc.try_submit(JobRequest::new(source("a", "c == c"))).unwrap_err();
        assert!(
            matches!(&rejected.error, Error::Service(ServiceError::NoModel { design }) if design == "a"),
            "{}",
            rejected.error
        );
    }

    #[test]
    fn event_stream_order_and_batching() {
        let svc = VerificationService::build(ServiceConfig::default(), false);
        let first = svc.submit(baseline(source("same", "c == c"))).unwrap();
        let follower = svc.submit(baseline(source("same", "c == c"))).unwrap();
        let other = svc.submit(baseline(source("other", "c >= 8'd0"))).unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();

        // Leader: Queued → Started(not batched, cold) → verdict → Done.
        let events: Vec<JobEvent> = std::iter::from_fn(|| first.next_event()).collect();
        assert!(matches!(events[0], JobEvent::Queued { depth: 1, .. }));
        assert!(
            matches!(events[1], JobEvent::Started { batched: false, cache_hit: false, .. }),
            "{:?}",
            events[1]
        );
        assert!(matches!(&events[2], JobEvent::TargetVerdict { target, .. } if target == "t"));
        assert!(matches!(events[3], JobEvent::Done { .. }));
        assert_eq!(events.len(), 4);

        // Same-design follower rides the batch: batched + cache_hit.
        let report = follower.wait().unwrap();
        assert!(report.batched);
        assert!(report.cache_hit);

        // The different design is its own (cold) batch.
        let report = other.wait().unwrap();
        assert!(!report.batched);
        assert!(!report.cache_hit);

        let stats = svc.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.batched_jobs, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn bad_rtl_fails_with_typed_parse_error() {
        let svc = VerificationService::build(ServiceConfig::default(), false);
        let handle = svc
            .submit(baseline(DesignInput::Source {
                name: "broken".into(),
                rtl: "module ((".into(),
                spec: String::new(),
                targets: vec![],
            }))
            .unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        let err = handle.wait().unwrap_err();
        assert!(matches!(&err, Error::Parse { design, .. } if design == "broken"), "{err}");
        assert_eq!(svc.stats().failed, 1);
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let svc = VerificationService::new(ServiceConfig::default().with_workers(1));
        let handle = svc.submit(baseline(source("a", "c == c"))).unwrap();
        assert!(handle.wait().is_ok());
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        let rejected = svc.try_submit(baseline(source("b", "c == c"))).unwrap_err();
        assert!(matches!(rejected.error, Error::Service(ServiceError::Closed)));
    }

    #[test]
    fn obs_enabled_job_carries_trace_and_prometheus_exposes_histograms() {
        let svc =
            VerificationService::build(ServiceConfig::default().with_obs(ObsConfig::Full), false);
        // Two same-design jobs: the second runs warm (cache hit) and must
        // still carry a full trace of its own.
        let cold = svc.submit(baseline(source("same", "c == c"))).unwrap();
        let warm = svc.submit(baseline(source("same", "c == c"))).unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        cold.wait().unwrap();
        let report = warm.wait().unwrap();

        let obs = report.obs.expect("obs report attached when observability is on");
        assert_eq!(obs.dropped, 0);
        let json = obs.chrome_json();
        let check = genfv_obs::validate_chrome_trace(&json).expect("valid Chrome trace JSON");
        assert!(check.balanced, "span tree unbalanced");
        let solve_depth = check.depth_of_prefix("solve.").expect("trace reaches solve calls");
        assert!(solve_depth >= 3, "solve spans nest under job/flow/prove, got {solve_depth}");
        assert!(obs.metrics.counter(genfv_obs::Counter::Solves) > 0);

        let text = svc.stats().render_prometheus();
        assert!(text.contains("genfv_jobs_completed_total 2"), "{text}");
        assert!(text.contains("genfv_queue_wait_seconds_bucket"), "{text}");
        assert!(text.contains("genfv_solve_latency_seconds_bucket"), "{text}");
        assert!(text.contains("genfv_queue_wait_seconds_count 2"), "{text}");
    }

    #[test]
    fn obs_off_jobs_carry_no_trace() {
        let svc = VerificationService::build(ServiceConfig::default(), false);
        let handle = svc.submit(baseline(source("a", "c == c"))).unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        let report = handle.wait().unwrap();
        assert!(report.obs.is_none());
        // The queue-wait histogram records regardless.
        assert_eq!(svc.stats().queue_wait.count, 1);
    }

    #[test]
    fn cache_key_separates_opt_levels() {
        use genfv_core::{OptLevel, PreparedDesign};
        let targets = vec![("t".to_string(), "c == c".to_string())];
        let src = source("same", "c == c");
        let full = DesignInput::Prepared(Box::new(
            PreparedDesign::new("same", RTL, "a free-running counter", &targets).unwrap(),
        ));
        let none = DesignInput::Prepared(Box::new(
            PreparedDesign::with_opt(
                "same",
                RTL,
                "a free-running counter",
                &targets,
                &OptConfig::default().with_level(OptLevel::None),
            )
            .unwrap(),
        ));
        let svc_opt = OptConfig::default();
        // Same content prepared at the same (default) level shares a key
        // across the Source/Prepared variants...
        assert_eq!(cache_key(&src, &svc_opt), cache_key(&full, &svc_opt));
        // ...but an unoptimized prepare of identical sources must key a
        // distinct entry: its sessions are not interchangeable.
        assert_ne!(cache_key(&full, &svc_opt), cache_key(&none, &svc_opt));
        // A service configured to prepare without optimization keys its
        // Source jobs alongside unoptimized Prepared submissions.
        let svc_none = OptConfig::default().with_level(OptLevel::None);
        assert_eq!(cache_key(&src, &svc_none), cache_key(&none, &svc_none));
    }

    #[test]
    fn reports_surface_opt_stats() {
        let svc = VerificationService::build(ServiceConfig::default(), false);
        let handle = svc.submit(baseline(source("a", "c == c"))).unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        let report = handle.wait().unwrap();
        assert!(report.opt().rounds >= 1, "default service prepares optimized");
        assert_eq!(report.opt().level, genfv_core::OptLevel::Full);
    }

    #[test]
    fn repeat_traffic_reuses_template_and_clean_depths() {
        let svc = VerificationService::build(ServiceConfig::default().with_batching(false), false);
        let warm = svc.submit(baseline(source("same", "c == c"))).unwrap();
        let repeat = svc.submit(baseline(source("same", "c == c"))).unwrap();
        {
            svc.shared.queue.lock().unwrap().closed = true;
        }
        svc.run_inline();
        assert!(!warm.wait().unwrap().cache_hit);
        let report = repeat.wait().unwrap();
        assert!(report.cache_hit, "second same-design job must hit the cache");
        let stats = svc.stats();
        assert!(stats.templates_reused >= 1, "warm session must adopt the cached template");
        assert!(stats.clean_seed_hits >= 1, "warm session must skip seeded base cases");
    }
}
