//! Synchronous corpus runner: a thin wrapper over the service.
//!
//! Earlier revisions kept a second, ad-hoc work-stealing thread pool in
//! `genfv-core` for corpus runs. [`run_corpus`] now builds a
//! [`VerificationService`] from the [`CorpusConfig`], submits one job per
//! design, and waits for the reports in submission order — same
//! signature-level contract (index-aligned results, scheduling-independent
//! reports, no model construction in [`genfv_core::CorpusMode::Baseline`]), one
//! scheduler.
//!
//! Batching and the warm-session cache are left on: corpora with repeated
//! designs get the same speedup service traffic does, and the
//! `service_differential` suite pins that the verdicts are unchanged.

use crate::request::{DesignInput, JobRequest};
use crate::service::{ServiceConfig, VerificationService};
use genfv_core::{CorpusConfig, FlowReport, PreparedDesign};
use genfv_genai::LanguageModel;

/// Runs one flow per prepared design over the service's worker pool.
///
/// `make_llm` builds the language model for job `i`; it is called on the
/// submitting thread (models need not be `Sync`, only `Send`), and not at
/// all in [`genfv_core::CorpusMode::Baseline`]. Results are index-aligned with
/// `designs` regardless of which worker ran what.
///
/// # Panics
/// Panics if a job fails outright (the corpus designs are expected to
/// prepare; submission cannot be rejected because the queue is sized to
/// the corpus).
pub fn run_corpus<L, F>(
    designs: &[PreparedDesign],
    make_llm: F,
    config: &CorpusConfig,
) -> Vec<FlowReport>
where
    L: LanguageModel + Send + 'static,
    F: Fn(usize) -> L,
{
    if designs.is_empty() {
        return Vec::new();
    }
    let service = VerificationService::new(
        ServiceConfig::default()
            .with_workers(config.workers)
            .with_queue_capacity(designs.len())
            .with_mode(config.mode)
            .with_flow(config.flow.clone()),
    );
    let handles: Vec<_> = designs
        .iter()
        .enumerate()
        .map(|(i, design)| {
            let mut request = JobRequest::new(DesignInput::Prepared(Box::new(design.clone())))
                .with_mode(config.mode);
            if config.mode.needs_model() {
                request = request.with_llm(make_llm(i));
            }
            service.submit(request).unwrap_or_else(|r| panic!("corpus submit failed: {r}"))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.wait().unwrap_or_else(|e| panic!("corpus job failed: {e}")).flow)
        .collect()
}
