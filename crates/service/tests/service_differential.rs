//! Differential suite: service verdicts must equal sequential flow runs.
//!
//! The service changes *how* jobs are scheduled (queue, batching,
//! warm-session cache, seeded sessions) but must never change *what* they
//! conclude. Every test here runs the same designs both ways — through
//! `VerificationService` / `run_corpus` and by calling the flow functions
//! directly — and pins verdict classes and accepted-lemma texts, covering
//! the batched, cache-hit, and cache-evicted service paths.

use genfv_core::{run_flow2, CorpusConfig, CorpusMode, FlowReport, TargetOutcome};
use genfv_designs::all_designs;
use genfv_genai::{ModelProfile, SyntheticLlm};
use genfv_service::{run_corpus, DesignInput, JobRequest, ServiceConfig, VerificationService};

fn verdict_class(o: &TargetOutcome) -> u8 {
    match o {
        TargetOutcome::Proven { .. } => 0,
        TargetOutcome::Falsified { .. } => 1,
        TargetOutcome::StillUnproven { .. } => 2,
        TargetOutcome::Unknown { .. } => 3,
    }
}

fn assert_same_report(service: &FlowReport, sequential: &FlowReport) {
    assert_eq!(service.design, sequential.design, "order must be submission order");
    let sc: Vec<u8> = service.targets.iter().map(|t| verdict_class(&t.outcome)).collect();
    let qc: Vec<u8> = sequential.targets.iter().map(|t| verdict_class(&t.outcome)).collect();
    assert_eq!(sc, qc, "scheduling must not change verdicts on {}", service.design);
    let sl: Vec<&str> = service.lemmas.iter().map(|l| l.text.as_str()).collect();
    let ql: Vec<&str> = sequential.lemmas.iter().map(|l| l.text.as_str()).collect();
    assert_eq!(sl, ql, "scheduling must not change lemmas on {}", service.design);
}

/// The full corpus through `run_corpus` (service-backed) vs direct
/// sequential Flow-2 runs.
#[test]
fn corpus_matches_sequential() {
    let designs: Vec<_> = all_designs().iter().map(|d| d.prepare().unwrap()).collect();
    let make_llm = |i: usize| SyntheticLlm::new(ModelProfile::GptFourTurbo, 42 + i as u64);
    let config = CorpusConfig::default().with_workers(3);
    let serviced = run_corpus(&designs, make_llm, &config);
    let sequential: Vec<_> = designs
        .iter()
        .enumerate()
        .map(|(i, d)| run_flow2(d.clone(), &mut make_llm(i), &config.flow))
        .collect();
    assert_eq!(serviced.len(), sequential.len());
    for (s, q) in serviced.iter().zip(&sequential) {
        assert_same_report(s, q);
    }
}

/// Repeat traffic (every design submitted twice, interleaved) must hit
/// the warm cache / batcher and still reproduce cold verdicts.
#[test]
fn repeat_traffic_with_cache_and_batching_matches_cold() {
    let bundles = all_designs();
    let service = VerificationService::new(ServiceConfig::default().with_workers(2));
    let mut handles = Vec::new();
    for _round in 0..2 {
        for (i, bundle) in bundles.iter().enumerate() {
            let request = JobRequest::new(DesignInput::Source {
                name: bundle.name.to_string(),
                rtl: bundle.rtl.to_string(),
                spec: bundle.spec.to_string(),
                targets: bundle.targets.clone(),
            })
            .with_llm(SyntheticLlm::new(ModelProfile::GptFourTurbo, 42 + i as u64));
            handles.push(service.submit(request).unwrap());
        }
    }
    let reports: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let stats = service.stats();
    service.shutdown();
    assert!(
        stats.cache_hits >= bundles.len() as u64,
        "second round must ride the cache (hits = {}, batched = {})",
        stats.cache_hits,
        stats.batched_jobs
    );

    let make_llm = |i: usize| SyntheticLlm::new(ModelProfile::GptFourTurbo, 42 + i as u64);
    for (i, bundle) in bundles.iter().enumerate() {
        let cold =
            run_flow2(bundle.prepare().unwrap(), &mut make_llm(i), &CorpusConfig::default().flow);
        // Both rounds used the same per-index seed, so both service
        // reports for this design must match the cold run.
        assert_same_report(&reports[i].flow, &cold);
        assert_same_report(&reports[bundles.len() + i].flow, &cold);
    }
}

/// A single-entry cache forces continuous eviction; verdicts must
/// survive losing and rebuilding warm capital mid-stream.
#[test]
fn cache_evicted_path_matches_sequential() {
    let bundles: Vec<_> = all_designs().into_iter().take(4).collect();
    let service = VerificationService::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_entries(1)
            .with_mode(CorpusMode::Baseline),
    );
    let mut handles = Vec::new();
    // a b a b … evicts on every submission once the cache holds one entry.
    for _ in 0..2 {
        for bundle in &bundles {
            let request = JobRequest::new(DesignInput::Source {
                name: bundle.name.to_string(),
                rtl: bundle.rtl.to_string(),
                spec: bundle.spec.to_string(),
                targets: bundle.targets.clone(),
            })
            .with_mode(CorpusMode::Baseline);
            handles.push(service.submit(request).unwrap());
        }
    }
    let reports: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let stats = service.stats();
    service.shutdown();
    assert!(stats.cache_evictions > 0, "single-entry cache must evict ({stats:?})");

    for (i, bundle) in bundles.iter().enumerate() {
        let cold =
            genfv_core::run_baseline(&bundle.prepare().unwrap(), &CorpusConfig::default().flow);
        assert_same_report(&reports[i].flow, &cold);
        assert_same_report(&reports[bundles.len() + i].flow, &cold);
    }
}

/// Ported from the old `genfv-core` shard scheduler: baseline corpora
/// must never construct a language model.
#[test]
fn baseline_mode_needs_no_llm() {
    let designs: Vec<_> = all_designs().iter().take(3).map(|d| d.prepare().unwrap()).collect();
    let config = CorpusConfig::default().with_workers(2).with_mode(CorpusMode::Baseline);
    let reports = run_corpus(
        &designs,
        |_: usize| -> SyntheticLlm { panic!("baseline must not build an LLM") },
        &config,
    );
    assert_eq!(reports.len(), designs.len());
    assert!(reports.iter().all(|r| r.model.contains("baseline")));
}

/// Ported from the old `genfv-core` shard scheduler.
#[test]
fn empty_corpus_is_fine() {
    let config = CorpusConfig::default();
    let out = run_corpus(&[], |i| SyntheticLlm::new(ModelProfile::GptFourTurbo, i as u64), &config);
    assert!(out.is_empty());
}
