//! Gate-level CNF construction helpers (Tseitin encoding).
//!
//! [`CnfBuilder`] wraps a [`Solver`] and offers structural-hashing-free gate
//! constructors (`and`, `or`, `xor`, `ite`, …) returning literals. The
//! bit-blaster in `genfv-ir` performs its own structural hashing at the AIG
//! level, so this layer stays deliberately simple; it also provides the
//! constant-true literal convention used across the stack.

use crate::lit::Lit;
use crate::solver::Solver;

/// Incremental CNF builder over a [`Solver`].
///
/// The builder owns the solver; retrieve it with
/// [`CnfBuilder::into_solver`] or operate through [`CnfBuilder::solver_mut`].
///
/// ```
/// use genfv_sat::CnfBuilder;
///
/// let mut b = CnfBuilder::new();
/// let x = b.fresh();
/// let y = b.fresh();
/// let g = b.and(x, y);
/// b.assert_lit(g);
/// let mut s = b.into_solver();
/// assert!(s.solve().is_sat());
/// assert_eq!(s.value(x), Some(true));
/// assert_eq!(s.value(y), Some(true));
/// ```
#[derive(Debug)]
pub struct CnfBuilder {
    solver: Solver,
    true_lit: Lit,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        CnfBuilder::new()
    }
}

impl CnfBuilder {
    /// Creates a builder with a fresh solver, allocating the constant-true
    /// literal.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause([t]);
        CnfBuilder { solver, true_lit: t }
    }

    /// The literal fixed to true (its negation is the constant false).
    #[inline]
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The literal fixed to false.
    #[inline]
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// Converts a boolean constant to its literal.
    #[inline]
    pub fn constant(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// Allocates a fresh unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Asserts `l` at the top level.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Adds an arbitrary clause.
    pub fn clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    /// Returns a literal equivalent to `a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() || b == self.false_lit() || a == !b {
            return self.false_lit();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit || a == b {
            return a;
        }
        let g = self.fresh();
        self.solver.add_clause([!g, a]);
        self.solver.add_clause([!g, b]);
        self.solver.add_clause([g, !a, !b]);
        g
    }

    /// Returns a literal equivalent to `a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Returns a literal equivalent to `a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() {
            return b;
        }
        if b == self.false_lit() {
            return a;
        }
        if a == self.true_lit {
            return !b;
        }
        if b == self.true_lit {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        let g = self.fresh();
        self.solver.add_clause([!g, a, b]);
        self.solver.add_clause([!g, !a, !b]);
        self.solver.add_clause([g, !a, b]);
        self.solver.add_clause([g, a, !b]);
        g
    }

    /// Returns a literal equivalent to `if c then t else e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.true_lit {
            return t;
        }
        if c == self.false_lit() {
            return e;
        }
        if t == e {
            return t;
        }
        let g = self.fresh();
        self.solver.add_clause([!g, !c, t]);
        self.solver.add_clause([!g, c, e]);
        self.solver.add_clause([g, !c, !t]);
        self.solver.add_clause([g, c, !e]);
        // Redundant but propagation-strengthening clauses:
        self.solver.add_clause([g, !t, !e]);
        self.solver.add_clause([!g, t, e]);
        g
    }

    /// N-ary conjunction.
    pub fn and_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = self.true_lit;
        for l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// N-ary disjunction.
    pub fn or_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = self.false_lit();
        for l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Returns a literal equivalent to `a == b` (XNOR).
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Mutable access to the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Shared access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Consumes the builder, returning the solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks a 2-input gate constructor against a reference
    /// boolean function by solving with assumptions.
    fn check_gate(
        build: impl Fn(&mut CnfBuilder, Lit, Lit) -> Lit,
        reference: impl Fn(bool, bool) -> bool,
    ) {
        for a_val in [false, true] {
            for b_val in [false, true] {
                let mut b = CnfBuilder::new();
                let x = b.fresh();
                let y = b.fresh();
                let g = build(&mut b, x, y);
                let mut s = b.into_solver();
                let ax = if a_val { x } else { !x };
                let ay = if b_val { y } else { !y };
                assert!(s.solve_with_assumptions(&[ax, ay]).is_sat());
                assert_eq!(s.value(g), Some(reference(a_val, b_val)), "inputs ({a_val},{b_val})");
            }
        }
    }

    #[test]
    fn and_truth_table() {
        check_gate(|b, x, y| b.and(x, y), |a, c| a && c);
    }

    #[test]
    fn or_truth_table() {
        check_gate(|b, x, y| b.or(x, y), |a, c| a || c);
    }

    #[test]
    fn xor_truth_table() {
        check_gate(|b, x, y| b.xor(x, y), |a, c| a != c);
    }

    #[test]
    fn iff_truth_table() {
        check_gate(|b, x, y| b.iff(x, y), |a, c| a == c);
    }

    #[test]
    fn ite_truth_table() {
        for c_val in [false, true] {
            for t_val in [false, true] {
                for e_val in [false, true] {
                    let mut b = CnfBuilder::new();
                    let c = b.fresh();
                    let t = b.fresh();
                    let e = b.fresh();
                    let g = b.ite(c, t, e);
                    let mut s = b.into_solver();
                    let mk = |l: Lit, v: bool| if v { l } else { !l };
                    assert!(s
                        .solve_with_assumptions(&[mk(c, c_val), mk(t, t_val), mk(e, e_val)])
                        .is_sat());
                    let expect = if c_val { t_val } else { e_val };
                    assert_eq!(s.value(g), Some(expect));
                }
            }
        }
    }

    #[test]
    fn constant_simplifications() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let t = b.true_lit();
        let f = b.false_lit();
        assert_eq!(b.and(t, x), x);
        assert_eq!(b.and(f, x), f);
        assert_eq!(b.or(f, x), x);
        assert_eq!(b.or(t, x), t);
        assert_eq!(b.xor(f, x), x);
        assert_eq!(b.xor(t, x), !x);
        assert_eq!(b.and(x, !x), f);
        assert_eq!(b.xor(x, x), f);
        assert_eq!(b.xor(x, !x), t);
    }

    #[test]
    fn nary_gates() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Lit> = (0..4).map(|_| b.fresh()).collect();
        let all = b.and_many(xs.iter().copied());
        let any = b.or_many(xs.iter().copied());
        b.assert_lit(all);
        let mut s = b.into_solver();
        assert!(s.solve().is_sat());
        for &x in &xs {
            assert_eq!(s.value(x), Some(true));
        }
        assert_eq!(s.value(any), Some(true));
    }
}
