//! # genfv-sat — a from-scratch CDCL SAT solver
//!
//! This crate implements the complete boolean-satisfiability engine that the
//! rest of the `genfv` stack (bit-blaster, bounded model checker, k-induction
//! engine) is built on. It is a conflict-driven clause-learning (CDCL) solver
//! in the MiniSat lineage:
//!
//! * two-watched-literal propagation,
//! * first-UIP conflict analysis with clause minimisation,
//! * exponential VSIDS activity with on-the-fly rescaling,
//! * phase saving,
//! * Luby-sequence restarts,
//! * glue-(LBD-)based learnt-clause database reduction,
//! * incremental solving under assumptions with final-conflict
//!   (unsat-core-over-assumptions) extraction,
//! * activation-literal helpers ([`ActivationGroup`]) for guarding and
//!   retracting hypotheses on a long-lived solver without losing learnt
//!   clauses — the substrate of the model checker's incremental proof
//!   sessions,
//! * cube splitting for cube-and-conquer ([`cube::split`]: exhaustive
//!   sign cubes over lookahead-scored high-activity variables), and
//! * a persistent, relocatable learnt-clause pool ([`ClausePool`]) that
//!   carries low-LBD glue across solvers, queries, and sessions.
//!
//! The public entry point is [`Solver`]. Variables are created with
//! [`Solver::new_var`], clauses added with [`Solver::add_clause`], and
//! satisfiability queried with [`Solver::solve`] or
//! [`Solver::solve_with_assumptions`].
//!
//! ```
//! use genfv_sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) — forces b
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a), Lit::pos(b)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(Lit::pos(b)), Some(true));
//! ```
//!
//! A DIMACS CNF parser is provided in [`dimacs`] for tests and tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assume;
pub mod clause;
pub mod cube;
pub mod dimacs;
pub mod lit;
pub mod pool;
pub mod solver;
pub mod tseitin;

pub use assume::ActivationGroup;
pub use clause::{Clause, ClauseBlock, ClauseRef};
pub use lit::{Lit, Var};
pub use pool::{BaseTag, ClausePool, PoolConfig, PoolStats, StepTables};
pub use solver::{QueryEffort, RestartPolicy, SolveResult, Solver, SolverConfig, SolverStats};
pub use tseitin::CnfBuilder;
