//! Activation-literal (selector) bookkeeping for incremental solving.
//!
//! Assumption-based incremental SAT keeps one long-lived [`Solver`] and
//! encodes every retractable hypothesis `F` behind a fresh *activation
//! literal* `s` as the clause `¬s ∨ F`. Assuming `s` in a
//! [`Solver::solve_with_assumptions`] query activates the hypothesis;
//! leaving it out deactivates it for that query; adding the unit clause
//! `¬s` retires it permanently. Either way the solver's clause database —
//! including everything it has *learnt* — survives intact, because the
//! guarded clauses are satisfiable through `¬s` and therefore never have
//! to be deleted.
//!
//! [`ActivationGroup`] is the small allocator/bookkeeper for that
//! discipline. The model checker's `ProofSession` drives all lemma,
//! candidate, and property guarding through it; the counters it keeps
//! (`created`/`retired`) surface in the session statistics.
//!
//! ## Soundness of retraction
//!
//! Retiring `s` only *adds* the unit `¬s`, which satisfies every clause
//! guarded by `s`. No clause that encodes the transition relation or any
//! other hypothesis is touched, so the solver's state remains a correct
//! encoding of the remaining (still-active) hypotheses: any model of the
//! remaining system extends to a model of the clause database by setting
//! retired selectors false, and any UNSAT answer under the remaining
//! assumptions is already justified without the retired clauses. Learnt
//! clauses are sound consequences of the database at the time they were
//! derived; clauses derived *from* a guarded hypothesis necessarily
//! contain `¬s`-reachable support and stay consequences after the unit is
//! added. Hence add/retire sequences in any order leave the solver
//! equivalent to a fresh solver loaded with only the active hypotheses —
//! the property the `session_lemma_proptest` test exercises.

use crate::lit::Lit;
use crate::solver::Solver;

/// Allocates, guards, and retires activation literals on one [`Solver`].
///
/// Plain data (two counters); all state lives in the solver itself, so a
/// group can be embedded in any structure that owns or borrows the solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActivationGroup {
    /// Activation literals handed out by [`ActivationGroup::fresh`].
    pub created: u64,
    /// Activation literals permanently deactivated.
    pub retired: u64,
}

impl ActivationGroup {
    /// A new, empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh activation literal (a new solver variable,
    /// positive polarity).
    pub fn fresh(&mut self, solver: &mut Solver) -> Lit {
        self.created += 1;
        Lit::pos(solver.new_var())
    }

    /// Guards a fact behind `selector`: adds `selector → fact`
    /// (the clause `¬selector ∨ fact`). Assuming `selector` activates the
    /// fact for that query only.
    pub fn imply(&self, solver: &mut Solver, selector: Lit, fact: Lit) {
        solver.add_clause([!selector, fact]);
    }

    /// Builds a *violation witness*: a fresh literal `w` with
    /// `w → ⋁ᵢ ¬factᵢ`. Assuming `w` asks the solver for a model in which
    /// at least one of the facts fails — a whole batch of proof
    /// obligations in one query. On SAT, probe each fact's value to see
    /// which ones the model falsified.
    pub fn any_violated(&mut self, solver: &mut Solver, facts: &[Lit]) -> Lit {
        let w = self.fresh(solver);
        let mut clause = Vec::with_capacity(facts.len() + 1);
        clause.push(!w);
        clause.extend(facts.iter().map(|&f| !f));
        solver.add_clause(clause);
        w
    }

    /// Permanently deactivates `selector` with the unit clause
    /// `¬selector`. One clause, no rebuild; see the module docs for why
    /// this is sound.
    pub fn retire(&mut self, solver: &mut Solver, selector: Lit) {
        self.retired += 1;
        solver.add_clause([!selector]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_fact_activates_only_under_assumption() {
        let mut solver = Solver::new();
        let mut group = ActivationGroup::new();
        let x = Lit::pos(solver.new_var());
        let s = group.fresh(&mut solver);
        group.imply(&mut solver, s, x);
        assert!(solver.solve_with_assumptions(&[s, !x]).is_unsat());
        assert!(solver.solve_with_assumptions(&[!x]).is_sat());
    }

    #[test]
    fn retired_selector_no_longer_forces_its_fact() {
        let mut solver = Solver::new();
        let mut group = ActivationGroup::new();
        let x = Lit::pos(solver.new_var());
        let s = group.fresh(&mut solver);
        group.imply(&mut solver, s, x);
        group.retire(&mut solver, s);
        // The guarded clause is satisfied through ¬s; x is free again.
        assert!(solver.solve_with_assumptions(&[!x]).is_sat());
        assert_eq!(group.created, 1);
        assert_eq!(group.retired, 1);
    }

    #[test]
    fn violation_witness_finds_a_falsified_member() {
        let mut solver = Solver::new();
        let mut group = ActivationGroup::new();
        let a = Lit::pos(solver.new_var());
        let b = Lit::pos(solver.new_var());
        solver.add_clause([a]); // a is forced; b is free
        let w = group.any_violated(&mut solver, &[a, b]);
        assert!(solver.solve_with_assumptions(&[w]).is_sat());
        // The model must falsify at least one member — and it cannot be a.
        assert_eq!(solver.value(a), Some(true));
        assert_eq!(solver.value(b), Some(false));
        // With both forced true the witness becomes unsatisfiable.
        solver.add_clause([b]);
        assert!(solver.solve_with_assumptions(&[w]).is_unsat());
    }

    #[test]
    fn retraction_leaves_unrelated_facts_intact() {
        let mut solver = Solver::new();
        let mut group = ActivationGroup::new();
        let x = Lit::pos(solver.new_var());
        let y = Lit::pos(solver.new_var());
        let sx = group.fresh(&mut solver);
        let sy = group.fresh(&mut solver);
        group.imply(&mut solver, sx, x);
        group.imply(&mut solver, sy, y);
        group.retire(&mut solver, sx);
        // y's guard is untouched by x's retirement.
        assert!(solver.solve_with_assumptions(&[sy, !y]).is_unsat());
        assert!(solver.solve_with_assumptions(&[!x, sy]).is_sat());
    }
}
