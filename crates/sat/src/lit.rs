//! Boolean variables and literals.
//!
//! A [`Var`] is an index into the solver's variable table; a [`Lit`] is a
//! variable together with a polarity, packed into a single `u32` using the
//! MiniSat encoding (`lit = 2 * var + sign`), which makes literals usable
//! directly as array indices in watch lists.

use std::fmt;
use std::ops::Not;

/// A boolean variable, identified by a dense non-negative index.
///
/// Variables are created by `Solver::new_var`; constructing one manually via
/// [`Var::from_index`] is useful in tests and file parsers.
///
/// ```
/// use genfv_sat::Var;
/// let v = Var::from_index(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < (u32::MAX / 2) as usize, "variable index overflow");
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a boolean variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means *negated*. The
/// all-ones encoding is reserved for [`Lit::UNDEF`].
///
/// ```
/// use genfv_sat::{Lit, Var};
/// let v = Var::from_index(7);
/// let p = Lit::pos(v);
/// assert_eq!(!p, Lit::neg(v));
/// assert_eq!((!p).var(), v);
/// assert!((!p).is_neg());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// A sentinel literal distinct from every real literal.
    pub const UNDEF: Lit = Lit(u32::MAX);

    /// Creates the positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit((var.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is the negation of its variable.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this literal is the positive occurrence of its variable.
    #[inline]
    pub fn is_pos(self) -> bool {
        !self.is_neg()
    }

    /// The dense code of this literal (`2 * var + sign`), usable as an
    /// array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::UNDEF {
            return write!(f, "⊥lit");
        }
        if self.is_neg() {
            write!(f, "¬x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Ternary assignment value used inside the solver.
///
/// `LBool` follows the MiniSat convention: `True`, `False`, `Undef`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Builds an `LBool` from a `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// XORs with a sign: flips `True`/`False` when `flip` holds.
    #[inline]
    pub fn xor(self, flip: bool) -> Self {
        match (self, flip) {
            (LBool::True, true) => LBool::False,
            (LBool::False, true) => LBool::True,
            (v, false) => v,
            (LBool::Undef, _) => LBool::Undef,
        }
    }

    /// Converts to `Option<bool>` (`Undef` ⇒ `None`).
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0usize, 1, 2, 100, 65535] {
            let v = Var::from_index(i);
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn lit_encoding_matches_minisat() {
        let v = Var::from_index(5);
        assert_eq!(Lit::pos(v).code(), 10);
        assert_eq!(Lit::neg(v).code(), 11);
        assert_eq!(Lit::from_code(10), Lit::pos(v));
    }

    #[test]
    fn negation_is_involutive() {
        let v = Var::from_index(9);
        let l = Lit::pos(v);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn lit_new_sign() {
        let v = Var::from_index(2);
        assert_eq!(Lit::new(v, false), Lit::pos(v));
        assert_eq!(Lit::new(v, true), Lit::neg(v));
        assert!(Lit::new(v, true).is_neg());
        assert!(Lit::new(v, false).is_pos());
    }

    #[test]
    fn lbool_xor_table() {
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(true), LBool::True);
        assert_eq!(LBool::True.xor(false), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
    }

    #[test]
    fn lbool_option() {
        assert_eq!(LBool::True.to_option(), Some(true));
        assert_eq!(LBool::False.to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(3);
        assert_eq!(format!("{}", Lit::pos(v)), "x3");
        assert_eq!(format!("{}", Lit::neg(v)), "¬x3");
        assert_eq!(format!("{}", v), "x3");
    }
}
