//! Cube splitting for cube-and-conquer.
//!
//! The portfolio layer (crate `genfv-portfolio`) races *configurations*
//! of one solver on one query; the complementary axis is splitting the
//! *search space*. [`split`] partitions a query into `2^d` **cubes** —
//! complete sign assignments over `d` carefully chosen branching
//! variables — which workers then refute (or satisfy) independently:
//!
//! * the cubes are exhaustive and pairwise disjoint by construction, so
//!   **any** SAT cube satisfies the original query, and **all** cubes
//!   UNSAT refutes it;
//! * each per-cube assumption core, restricted to the *original*
//!   assumptions, witnesses the refutation of that cube, so the union of
//!   restricted cores is a valid core for the whole query.
//!
//! ## Variable selection
//!
//! Good cube variables split the search space evenly and propagate hard
//! in both phases. Selection is two-staged, March-style but driven by
//! the CDCL solver's own state (the conflict-budget probe that precedes
//! a split has already populated VSIDS activities):
//!
//! 1. rank unassigned variables by VSIDS activity (ties by index) and
//!    keep the top `candidates`;
//! 2. under the query's assumptions, **lookahead-score** each candidate
//!    by failed-literal probing both phases ([`Solver::probe_lit`]):
//!    a variable whose either phase conflicts is skipped (it is not a
//!    splitter — one side is already implied), otherwise its score is
//!    the *minimum* of the two propagation counts, favouring balanced,
//!    high-propagation splits.
//!
//! The top `depth` scorers become the cube variables. Everything is
//! deterministic: identical solver state and arguments yield identical
//! cubes, which the portfolio's lock-step scheduler depends on.

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// Splits a query into `2^depth` sign cubes over lookahead-scored
/// high-activity variables (see the [module docs](self)).
///
/// Returns `None` when no useful split exists: `depth` is zero, the
/// assumptions already conflict under propagation (the caller's plain
/// solve will settle the query immediately), or fewer than `depth`
/// candidates survive probing. The solver's trail is restored either
/// way; only phase-saving and propagation counters are perturbed.
pub fn split(
    solver: &mut Solver,
    assumptions: &[Lit],
    depth: u32,
    candidates: usize,
) -> Option<Vec<Vec<Lit>>> {
    if depth == 0 || candidates == 0 {
        return None;
    }
    if !solver.push_assumptions(assumptions) {
        solver.backtrack_to_root();
        return None;
    }

    // Stage 1: top `candidates` unassigned variables by VSIDS activity.
    let mut ranked: Vec<Var> =
        (0..solver.num_vars()).map(Var::from_index).filter(|&v| solver.is_unassigned(v)).collect();
    ranked.sort_by(|&a, &b| {
        solver
            .activity(b)
            .partial_cmp(&solver.activity(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });
    ranked.truncate(candidates);

    // Stage 2: lookahead-score both phases of each candidate.
    let mut scored: Vec<(usize, Var)> = Vec::with_capacity(ranked.len());
    for v in ranked {
        let Some(pos) = solver.probe_lit(Lit::pos(v)) else { continue };
        let Some(neg) = solver.probe_lit(Lit::neg(v)) else { continue };
        scored.push((pos.min(neg), v));
    }
    solver.backtrack_to_root();

    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.index().cmp(&b.1.index())));
    scored.truncate(depth as usize);
    if scored.len() < depth as usize {
        return None; // not enough splitters: fall back to plain racing
    }

    let vars: Vec<Var> = scored.into_iter().map(|(_, v)| v).collect();
    let n = vars.len() as u32;
    let cubes = (0..1u64 << n)
        .map(|mask| {
            vars.iter()
                .enumerate()
                .map(|(i, &v)| Lit::new(v, mask & (1 << i) != 0))
                .collect::<Vec<Lit>>()
        })
        .collect();
    Some(cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    /// PHP(n, n-1), returning the literal matrix.
    fn pigeonhole(s: &mut Solver, n: usize) -> Vec<Vec<Lit>> {
        let mut p = vec![vec![Lit::UNDEF; n - 1]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (&a, &b) in row_i.iter().zip(row_j) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        p
    }

    #[test]
    fn cubes_are_exhaustive_and_disjoint() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6);
        s.set_conflict_budget(50);
        s.solve(); // populate activities
        let cubes = split(&mut s, &[], 3, 16).expect("splittable");
        assert_eq!(cubes.len(), 8);
        let vars: Vec<Var> = cubes[0].iter().map(|l| l.var()).collect();
        for cube in &cubes {
            assert_eq!(cube.iter().map(|l| l.var()).collect::<Vec<_>>(), vars);
        }
        // All 8 sign patterns occur exactly once.
        let mut masks: Vec<u32> = cubes
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, l)| (l.is_neg() as u32) << i).sum())
            .collect();
        masks.sort_unstable();
        assert_eq!(masks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn splitting_is_deterministic() {
        let mk = || {
            let mut s = Solver::new();
            pigeonhole(&mut s, 6);
            s.set_conflict_budget(50);
            s.solve();
            split(&mut s, &[], 3, 16)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn all_cubes_unsat_on_an_unsat_instance() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6);
        s.set_conflict_budget(50);
        s.solve();
        let cubes = split(&mut s, &[], 2, 16).expect("splittable");
        for cube in &cubes {
            assert!(s.solve_with_assumptions(cube).is_unsat());
        }
    }

    #[test]
    fn sat_survives_in_some_cube() {
        let mut s = Solver::new();
        let v: Vec<Lit> = (0..8).map(|_| Lit::pos(s.new_var())).collect();
        // A satisfiable ring of implications.
        for w in v.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        s.set_conflict_budget(10);
        s.solve();
        let Some(cubes) = split(&mut s, &[], 2, 8) else {
            return; // too easy to split — nothing to check
        };
        let sat = cubes.iter().filter(|c| s.solve_with_assumptions(c) == SolveResult::Sat).count();
        assert!(sat >= 1, "an exhaustive split of a SAT formula has a SAT cube");
    }

    #[test]
    fn conflicting_assumptions_refuse_to_split() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([!a, b]);
        assert!(split(&mut s, &[a, !b], 2, 8).is_none());
        // The solver is restored: the query still answers normally.
        assert!(s.solve_with_assumptions(&[a, !b]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn depth_zero_never_splits() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        assert!(split(&mut s, &[], 0, 8).is_none());
    }
}
