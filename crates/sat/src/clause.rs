//! Clause storage.
//!
//! Clauses live in a single arena ([`ClauseDb`]) and are referred to by
//! [`ClauseRef`] handles. The arena supports in-place strengthening, lazy
//! deletion, and compaction during learnt-database reduction.

use crate::lit::Lit;
use std::fmt;

/// A handle to a clause stored in a [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// Sentinel meaning "no clause" (used as a reason for decisions).
    pub const UNDEF: ClauseRef = ClauseRef(u32::MAX);

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ClauseRef::UNDEF {
            write!(f, "c⊥")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

/// A single clause: a disjunction of literals plus solver metadata.
#[derive(Clone, Debug)]
pub struct Clause {
    lits: Vec<Lit>,
    /// Whether the clause was learnt by conflict analysis (eligible for
    /// deletion) as opposed to a problem clause.
    learnt: bool,
    /// Literal-block distance ("glue") at learn time; lower is better.
    lbd: u32,
    /// VSIDS-style activity for learnt-clause reduction.
    activity: f64,
    /// Marked for lazy deletion.
    deleted: bool,
}

impl Clause {
    fn new(lits: Vec<Lit>, learnt: bool, lbd: u32) -> Self {
        Clause { lits, learnt, lbd, activity: 0.0, deleted: false }
    }

    /// The literals of the clause.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause has no literals (never true for stored clauses).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether this is a learnt clause.
    #[inline]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }

    /// The literal-block distance recorded for this clause.
    #[inline]
    pub fn lbd(&self) -> u32 {
        self.lbd
    }

    /// Whether the clause has been lazily deleted.
    #[inline]
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    #[inline]
    pub(crate) fn activity(&self) -> f64 {
        self.activity
    }

    #[inline]
    pub(crate) fn bump_activity(&mut self, inc: f64) {
        self.activity += inc;
    }

    #[inline]
    pub(crate) fn rescale_activity(&mut self, factor: f64) {
        self.activity *= factor;
    }

    #[inline]
    pub(crate) fn mark_deleted(&mut self) {
        self.deleted = true;
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self) -> &mut Vec<Lit> {
        &mut self.lits
    }
}

/// Arena of clauses addressed by [`ClauseRef`].
///
/// ```
/// use genfv_sat::clause::ClauseDb;
/// use genfv_sat::{Lit, Var};
///
/// let mut db = ClauseDb::new();
/// let a = Lit::pos(Var::from_index(0));
/// let b = Lit::pos(Var::from_index(1));
/// let cref = db.alloc(vec![a, b], false, 0);
/// assert_eq!(db.clause(cref).lits(), &[a, b]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    live_learnt: usize,
    live_problem: usize,
}

impl ClauseDb {
    /// Creates an empty clause database.
    pub fn new() -> Self {
        ClauseDb::default()
    }

    /// Allocates a clause and returns its handle.
    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let idx = self.clauses.len();
        self.clauses.push(Clause::new(lits, learnt, lbd));
        if learnt {
            self.live_learnt += 1;
        } else {
            self.live_problem += 1;
        }
        ClauseRef(idx as u32)
    }

    /// Immutable access to a clause.
    #[inline]
    pub fn clause(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.index()]
    }

    /// Mutable access to a clause.
    #[inline]
    pub fn clause_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.index()]
    }

    /// Marks a clause deleted (lazily: the slot stays allocated; watch
    /// lists are cleaned up by the solver on detach).
    pub fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.index()];
        if !c.deleted {
            if c.learnt {
                self.live_learnt -= 1;
            } else {
                self.live_problem -= 1;
            }
            c.mark_deleted();
        }
    }

    /// Number of live learnt clauses.
    #[inline]
    pub fn live_learnt(&self) -> usize {
        self.live_learnt
    }

    /// Number of live problem clauses.
    #[inline]
    pub fn live_problem(&self) -> usize {
        self.live_problem
    }

    /// Iterates over handles of all live learnt clauses.
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Total number of slots (live + deleted) in the arena.
    #[inline]
    pub fn capacity_slots(&self) -> usize {
        self.clauses.len()
    }

    /// Iterates over live learnt clauses allocated at or after slot
    /// `mark` (a value previously read from [`ClauseDb::capacity_slots`]).
    /// The portfolio uses this to harvest exactly the clauses a worker
    /// learnt during one race.
    pub fn learnt_since(&self, mark: usize) -> impl Iterator<Item = &Clause> {
        self.clauses.iter().skip(mark).filter(|c| c.learnt && !c.deleted)
    }

    /// Trims excess capacity from the arena and from every stored clause
    /// (in-place strengthening and watch migration leave slack behind).
    pub fn shrink_to_fit(&mut self) {
        for c in &mut self.clauses {
            c.lits.shrink_to_fit();
        }
        self.clauses.shrink_to_fit();
    }
}

/// A relocatable block of clauses over a private variable space
/// `0..num_vars`.
///
/// Literals inside the block are ordinary [`Lit`]s whose variables are
/// interpreted *block-locally*: variable `i` names the `i`-th slot of the
/// block, not the `i`-th solver variable. [`crate::Solver::load_template`]
/// instantiates a block by allocating a fresh window of solver variables
/// and adding `2 × base` to every literal code — the MiniSat encoding
/// (`code = 2·var + sign`) makes renaming a whole clause arena a single
/// offset add per literal, with the sign bit carried along for free.
///
/// Blocks are expected to be *pre-normalised* by their producer (the
/// template blaster in `genfv-ir`): no duplicate literals, no tautologies,
/// no constants. Instantiation therefore skips the per-clause
/// simplification walk of [`crate::Solver::add_clause`] entirely.
///
/// ```
/// use genfv_sat::{ClauseBlock, Lit, Solver, Var};
///
/// let mut block = ClauseBlock::new(2);
/// let a = Lit::pos(Var::from_index(0));
/// let b = Lit::pos(Var::from_index(1));
/// block.push_clause(&[a, b]);
/// block.push_unit(!a);
/// let mut s = Solver::new();
/// let (base, ok) = s.load_template(&block);
/// assert!(ok);
/// assert!(s.solve().is_sat());
/// // The stamped copy of `b` lives at the window offset.
/// let b0 = Lit::from_code(b.code() + 2 * base);
/// assert_eq!(s.value(b0), Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct ClauseBlock {
    num_vars: u32,
    /// Flat literal arena; clause `i` occupies `lits[bounds[i]..bounds[i+1]]`.
    lits: Vec<Lit>,
    /// Clause boundaries into `lits`; always starts with 0.
    bounds: Vec<u32>,
    /// Unit facts, enqueued (and propagated) at instantiation time.
    units: Vec<Lit>,
}

/// An empty block over zero variables (every method relies on the
/// leading 0 in `bounds`, so a derived all-empty default would be
/// malformed).
impl Default for ClauseBlock {
    fn default() -> Self {
        ClauseBlock::new(0)
    }
}

impl ClauseBlock {
    /// Creates an empty block over `num_vars` local variables.
    pub fn new(num_vars: u32) -> Self {
        ClauseBlock { num_vars, lits: Vec::new(), bounds: vec![0], units: Vec::new() }
    }

    /// Number of local variables the block is defined over.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of stored (non-unit) clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of literals across all stored clauses.
    #[inline]
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }

    /// The unit facts of the block.
    #[inline]
    pub fn units(&self) -> &[Lit] {
        &self.units
    }

    /// Appends a clause of block-local literals (`len >= 2`; see the type
    /// docs for the normalisation contract).
    ///
    /// # Panics
    /// Panics (debug) if the clause is shorter than 2 literals or names a
    /// variable outside `0..num_vars`.
    pub fn push_clause(&mut self, lits: &[Lit]) {
        debug_assert!(lits.len() >= 2, "unit/empty clauses go through push_unit");
        debug_assert!(lits.iter().all(|l| (l.var().index() as u32) < self.num_vars));
        self.lits.extend_from_slice(lits);
        self.bounds.push(self.lits.len() as u32);
    }

    /// Appends a unit fact over a block-local literal.
    pub fn push_unit(&mut self, lit: Lit) {
        debug_assert!((lit.var().index() as u32) < self.num_vars);
        self.units.push(lit);
    }

    /// Iterates over the stored clauses as literal slices.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.bounds.windows(2).map(move |w| &self.lits[w[0] as usize..w[1] as usize])
    }

    /// Trims excess capacity (blocks are built once and then read-only).
    pub fn shrink_to_fit(&mut self) {
        self.lits.shrink_to_fit();
        self.bounds.shrink_to_fit();
        self.units.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn l(i: usize) -> Lit {
        Lit::pos(Var::from_index(i))
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(vec![l(0), l(1)], false, 0);
        let c2 = db.alloc(vec![l(1), l(2), l(3)], true, 2);
        assert_eq!(db.clause(c1).lits(), &[l(0), l(1)]);
        assert_eq!(db.clause(c2).len(), 3);
        assert!(db.clause(c2).is_learnt());
        assert_eq!(db.clause(c2).lbd(), 2);
        assert_eq!(db.live_problem(), 1);
        assert_eq!(db.live_learnt(), 1);
    }

    #[test]
    fn delete_is_idempotent_and_updates_counts() {
        let mut db = ClauseDb::new();
        let c = db.alloc(vec![l(0), l(1)], true, 1);
        db.delete(c);
        db.delete(c);
        assert!(db.clause(c).is_deleted());
        assert_eq!(db.live_learnt(), 0);
    }

    #[test]
    fn learnt_refs_skips_deleted() {
        let mut db = ClauseDb::new();
        let _p = db.alloc(vec![l(0), l(1)], false, 0);
        let a = db.alloc(vec![l(0), l(2)], true, 1);
        let b = db.alloc(vec![l(1), l(2)], true, 1);
        db.delete(a);
        let live: Vec<_> = db.learnt_refs().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let c = db.alloc(vec![l(0), l(1)], true, 1);
        db.clause_mut(c).bump_activity(1.0);
        db.clause_mut(c).rescale_activity(0.5);
        assert!((db.clause(c).activity() - 0.5).abs() < 1e-12);
    }
}
