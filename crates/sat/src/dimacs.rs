//! DIMACS CNF parsing, used by tests and tooling.
//!
//! Only the classic `p cnf <vars> <clauses>` format is supported; `c` comment
//! lines are skipped and clauses are zero-terminated integer lists.

use crate::lit::{Lit, Var};
use std::error::Error;
use std::fmt;

/// A parsed CNF formula.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Declared number of variables.
    pub num_vars: usize,
    /// The clauses, as literal vectors.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh [`crate::Solver`], creating
    /// `num_vars` variables in order.
    pub fn load_into(&self, solver: &mut crate::Solver) {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }
}

/// Error produced when DIMACS parsing fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDimacsError { line, message: message.into() }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a malformed header, a literal out of the
/// declared range, or a clause missing its `0` terminator.
///
/// ```
/// let cnf = genfv_sat::dimacs::parse("p cnf 2 2\n1 2 0\n-1 2 0\n")?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), genfv_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError::new(n, "expected `p cnf <vars> <clauses>`"));
            }
            let vars: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(n, "bad variable count"))?;
            let _nclauses: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(n, "bad clause count"))?;
            num_vars = Some(vars);
            continue;
        }
        let nv =
            num_vars.ok_or_else(|| ParseDimacsError::new(n, "clause before `p cnf` header"))?;
        for tok in line.split_whitespace() {
            let val: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(n, format!("bad literal `{tok}`")))?;
            if val == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let idx = val.unsigned_abs() as usize - 1;
                if idx >= nv {
                    return Err(ParseDimacsError::new(
                        n,
                        format!("literal {val} out of declared range 1..={nv}"),
                    ));
                }
                current.push(Lit::new(Var::from_index(idx), val < 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::new(
            input.lines().count(),
            "last clause is missing its `0` terminator",
        ));
    }
    Ok(Cnf { num_vars: num_vars.unwrap_or(0), clauses })
}

/// Serialises a formula back to DIMACS text (inverse of [`parse`]).
pub fn render(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let v = l.var().index() as i64 + 1;
            let signed = if l.is_neg() { -v } else { v };
            out.push_str(&signed.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
        assert!(cnf.clauses[0][1].is_neg());
    }

    #[test]
    fn parse_multiline_clause() {
        let cnf = parse("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(
            cnf.clauses,
            vec![vec![Lit::pos(Var::from_index(0)), Lit::pos(Var::from_index(1))]]
        );
    }

    #[test]
    fn error_on_missing_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn error_on_out_of_range() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn error_on_unterminated_clause() {
        assert!(parse("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn roundtrip_through_render() {
        let text = "p cnf 3 2\n1 -2 0\n-3 2 0\n";
        let cnf = parse(text).unwrap();
        let again = parse(&render(&cnf)).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn load_into_solver_and_solve() {
        let cnf = parse("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n").unwrap();
        let mut s = Solver::new();
        cnf.load_into(&mut s);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Lit::pos(Var::from_index(0))), Some(true));
        assert_eq!(s.value(Lit::pos(Var::from_index(1))), Some(true));
    }
}
