//! A persistent, relocatable learnt-clause pool.
//!
//! CDCL solvers accumulate "glue" (low-LBD learnt clauses) that encodes
//! hard-won structural knowledge about a formula — and ordinarily all of
//! it dies with the solver. For the model checker's workload this is
//! especially wasteful: every step obligation of every property of every
//! session over one design is a query about the *same* template-stamped
//! transition relation, differing only in which solver variables each
//! time frame landed on. A [`ClausePool`] outlives individual solvers and
//! carries their glue across queries, properties, sessions, portfolio
//! clones, and service jobs.
//!
//! ## Two entry kinds, two soundness arguments
//!
//! **Step entries** come from free-start (induction-step) solvers whose
//! frames are template stamps. A learnt clause qualifies for the pool iff
//! every variable it names lies inside some frame's interior window or in
//! the frame-0 free-state (X) range. Such a clause is implied by the
//! stamped frame chain `T₀ ∧ T₁ ∧ … ∧ T_f` alone (`f` = its deepest
//! frame): every other problem clause in the session solver — frame
//! guards, lemma selectors, property monitors, simple-path difference
//! gates — is a *conservative extension* of the chain (each is either
//! guarded by a literal the chain leaves free, or a Tseitin definition of
//! a fresh variable), so any model of the chain extends to a model of the
//! full clause set, and a chain-variable clause implied by the full set
//! is implied by the chain. The chain itself is determined (up to the
//! bijective window renaming) by the template, so the clause can be
//! replayed in *any* solver that has stamped frames `0..=f` of the same
//! template, by rewriting each literal through that solver's frame
//! tables. Entries are therefore stored in solver-independent
//! *normalized* coordinates: `(frame, window slot)` per interior literal
//! and `(X, bit)` per free-state literal.
//!
//! The same argument supports shifting a clause *up* by δ ≥ 0 frames
//! (frame `f` ↦ frame `f+δ`, X bit `i` ↦ frame δ's state-substitution
//! literal): the chain suffix `T_δ ∧ … ∧ T_{f+δ}` is an isomorphic copy
//! of the prefix the clause was learnt over, *more* constrained at its
//! input boundary (frame δ's state bits are next-state outputs rather
//! than free variables), so the implication is preserved. Shifting
//! *down* would be unsound — it drops the is-reachable-from-a-predecessor
//! constraint. [`ClausePool::import_step`] instantiates at whatever
//! shift the caller's [`StepTables`] encode; sessions use δ = 0.
//!
//! **Base entries** come from reset-pinned (BMC/base-case) solvers, whose
//! constant folding makes frames non-uniform — no window normalization
//! exists. Instead, each entry is stored verbatim and tagged with the
//! exporting solver's `(num_vars, problem_hash)` — a running hash of its
//! problem-clause addition sequence, folded *before* level-0
//! simplification (see [`Solver::problem_hash`]). A solver may import a
//! base entry iff the tag matches a point in its *own* addition history:
//! equal tag means the importer's clause set is a superset of everything
//! the exporter knew when the clause was learnt, so the clause is implied.
//!
//! ## Mechanics
//!
//! The pool is `Sync` (mutex-guarded deques + atomic counters), FIFO-ish
//! byte-budgeted (oldest entries evicted first), deduplicated by content
//! hash, and hands out monotonically increasing entry ids so each
//! consumer can track what it has already replayed (and skip its own
//! exports) with a plain id set.

use crate::lit::Lit;
use crate::solver::Solver;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tunable parameters of a [`ClausePool`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Byte budget; oldest entries are evicted once exceeded.
    pub max_bytes: usize,
    /// Only clauses with LBD at or below this are worth pooling.
    pub max_lbd: u32,
    /// Maximum clauses admitted per export call.
    pub export_limit: usize,
    /// Maximum clauses handed out per import call.
    pub import_limit: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_bytes: 2 << 20, // 2 MiB ≈ tens of thousands of glue clauses
            max_lbd: 3,
            export_limit: 512,
            import_limit: 1024,
        }
    }
}

/// Identifies a point in a base-direction solver's problem-clause
/// addition history; see [`Solver::problem_hash`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BaseTag {
    /// Variable count at the tagged point.
    pub num_vars: u64,
    /// Running problem hash at the tagged point.
    pub problem_hash: u64,
}

impl BaseTag {
    /// The tag of `solver`'s current problem-clause prefix.
    pub fn of(solver: &Solver) -> BaseTag {
        BaseTag { num_vars: solver.num_vars() as u64, problem_hash: solver.problem_hash() }
    }
}

/// The frame layout of a template-stamped free-start solver, used to
/// normalize clauses on export and re-instantiate them on import.
///
/// `window_bases[f]` is the first solver variable of frame `f`'s interior
/// window (strictly ascending — frames are stamped in order, with other
/// allocations interleaved between windows). `x_lits[i]` is the literal
/// substituted for template X slot `i` in frame 0: on export these are
/// the contiguous fresh free-state variables; on import at shift δ they
/// are frame δ's state-substitution literals.
#[derive(Clone, Copy, Debug)]
pub struct StepTables<'a> {
    /// Interior-window base variable of each stamped frame, ascending.
    pub window_bases: &'a [usize],
    /// Interior window width in variables (template `num_vars`).
    pub window_width: usize,
    /// Substitution literals for the template's X slots.
    pub x_lits: &'a [Lit],
}

/// One literal in normalized (solver-independent) step coordinates.
///
/// The derived ordering (X literals before frame literals, then by
/// frame/slot/sign) is the canonical clause order used for content
/// hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PoolLit {
    /// Bit `bit` of the frame-0 free state, possibly negated.
    X {
        /// Template X-slot index.
        bit: u32,
        /// Negated occurrence.
        neg: bool,
    },
    /// Slot `slot` of frame `frame`'s interior window, possibly negated.
    Frame {
        /// Frame index (0-based).
        frame: u32,
        /// Offset inside the frame's interior window.
        slot: u32,
        /// Negated occurrence.
        neg: bool,
    },
}

/// A normalized step-direction clause.
#[derive(Clone, Debug)]
struct StepEntry {
    lits: Vec<PoolLit>,
    /// Deepest frame referenced; import needs frames `0..=span_top`.
    span_top: u32,
}

/// A verbatim base-direction clause, valid under its exporter's tag.
#[derive(Clone, Debug)]
struct BaseEntry {
    lits: Vec<Lit>,
    tag: BaseTag,
}

#[derive(Debug, Default)]
struct PoolInner {
    next_id: u64,
    step: VecDeque<(u64, StepEntry)>,
    base: VecDeque<(u64, BaseEntry)>,
    /// Content hashes of resident entries (duplicate rejection).
    dedup: HashSet<u64>,
    bytes: usize,
}

/// Counter snapshot of a pool; see [`ClausePool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Clauses admitted into the pool.
    pub exports: u64,
    /// Clauses handed out to importers.
    pub imports: u64,
    /// Import calls that yielded at least one clause.
    pub hits: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Export candidates rejected as already resident.
    pub duplicates: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes.
    pub bytes: usize,
}

/// A persistent learnt-clause pool; see the [module docs](self).
#[derive(Debug)]
pub struct ClausePool {
    config: PoolConfig,
    inner: Mutex<PoolInner>,
    exports: AtomicU64,
    imports: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    duplicates: AtomicU64,
}

impl Default for ClausePool {
    fn default() -> Self {
        ClausePool::new(PoolConfig::default())
    }
}

/// FNV-1a fold of one `u64`.
#[inline]
fn fnv(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const STEP_ENTRY_OVERHEAD: usize = 64;
const POOL_LIT_BYTES: usize = 12;

impl ClausePool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Self {
        ClausePool {
            config,
            inner: Mutex::new(PoolInner::default()),
            exports: AtomicU64::new(0),
            imports: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Approximate resident bytes (for cache byte accounting).
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().expect("pool lock").bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("pool lock");
        PoolStats {
            exports: self.exports.load(Ordering::Relaxed),
            imports: self.imports.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            entries: inner.step.len() + inner.base.len(),
            bytes: inner.bytes,
        }
    }

    /// Normalizes one solver clause through `tables`, or `None` if any
    /// literal lies outside every frame window and the X range (guard,
    /// selector, monitor, or simple-path variables — not chain-implied,
    /// never poolable) or the clause is a tautology.
    fn normalize(clause: &[Lit], tables: &StepTables<'_>) -> Option<StepEntry> {
        let x_base = tables.x_lits.first()?.var().index();
        let x_bits = tables.x_lits.len();
        debug_assert!(
            tables
                .x_lits
                .iter()
                .enumerate()
                .all(|(i, l)| l.is_pos() && l.var().index() == x_base + i),
            "export tables need the contiguous fresh frame-0 X variables"
        );
        let mut lits = Vec::with_capacity(clause.len());
        let mut span_top = 0u32;
        for &l in clause {
            let v = l.var().index();
            if (x_base..x_base + x_bits).contains(&v) {
                lits.push(PoolLit::X { bit: (v - x_base) as u32, neg: l.is_neg() });
                continue;
            }
            let f = tables.window_bases.partition_point(|&b| b <= v).checked_sub(1)?;
            let base = tables.window_bases[f];
            if v >= base + tables.window_width {
                return None; // between windows: guard/selector/monitor var
            }
            span_top = span_top.max(f as u32);
            lits.push(PoolLit::Frame { frame: f as u32, slot: (v - base) as u32, neg: l.is_neg() });
        }
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            let same = match (w[0], w[1]) {
                (PoolLit::X { bit: a, .. }, PoolLit::X { bit: b, .. }) => a == b,
                (
                    PoolLit::Frame { frame: fa, slot: sa, .. },
                    PoolLit::Frame { frame: fb, slot: sb, .. },
                ) => fa == fb && sa == sb,
                _ => false,
            };
            if same {
                return None; // x ∨ ¬x: tautology, worthless
            }
        }
        Some(StepEntry { lits, span_top })
    }

    fn step_hash(entry: &StepEntry) -> u64 {
        let mut h = fnv(0xcbf2_9ce4_8422_2325, 1); // step discriminator
        for &l in &entry.lits {
            let (a, b, c) = match l {
                PoolLit::X { bit, neg } => (u32::MAX, bit, neg),
                PoolLit::Frame { frame, slot, neg } => (frame, slot, neg),
            };
            h = fnv(h, ((a as u64) << 33) | ((b as u64) << 1) | c as u64);
        }
        h
    }

    fn base_hash(entry: &BaseEntry) -> u64 {
        let mut h = fnv(0xcbf2_9ce4_8422_2325, 2); // base discriminator
        h = fnv(h, entry.tag.num_vars);
        h = fnv(h, entry.tag.problem_hash);
        for &l in &entry.lits {
            h = fnv(h, l.code() as u64);
        }
        h
    }

    /// Evicts oldest entries (across both kinds, by id) until the byte
    /// budget holds. Caller holds the lock.
    fn enforce_budget(&self, inner: &mut PoolInner) {
        while inner.bytes > self.config.max_bytes {
            let step_front = inner.step.front().map(|&(id, _)| id);
            let base_front = inner.base.front().map(|&(id, _)| id);
            let evict_step = match (step_front, base_front) {
                (Some(s), Some(b)) => s < b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if evict_step {
                let (_, e) = inner.step.pop_front().expect("non-empty");
                inner.bytes -= STEP_ENTRY_OVERHEAD + e.lits.len() * POOL_LIT_BYTES;
                inner.dedup.remove(&Self::step_hash(&e));
            } else {
                let (_, e) = inner.base.pop_front().expect("non-empty");
                inner.bytes -= STEP_ENTRY_OVERHEAD + e.lits.len() * POOL_LIT_BYTES;
                inner.dedup.remove(&Self::base_hash(&e));
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Admits step-direction glue clauses, normalized through `tables`.
    /// Clauses touching non-window variables, tautologies, duplicates,
    /// and anything past the per-call limit are dropped. Returns the ids
    /// assigned, which the exporter should mark as consumed so it never
    /// re-imports its own clauses.
    pub fn export_step(&self, clauses: &[Vec<Lit>], tables: &StepTables<'_>) -> Vec<u64> {
        if tables.x_lits.is_empty() || tables.window_bases.is_empty() {
            return Vec::new();
        }
        let mut ids = Vec::new();
        let mut inner = self.inner.lock().expect("pool lock");
        for clause in clauses.iter().take(self.config.export_limit) {
            let Some(entry) = Self::normalize(clause, tables) else { continue };
            if entry.lits.is_empty() {
                continue;
            }
            let h = Self::step_hash(&entry);
            if !inner.dedup.insert(h) {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let id = inner.next_id;
            inner.next_id += 1;
            inner.bytes += STEP_ENTRY_OVERHEAD + entry.lits.len() * POOL_LIT_BYTES;
            inner.step.push_back((id, entry));
            ids.push(id);
        }
        self.exports.fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.enforce_budget(&mut inner);
        ids
    }

    /// Admits base-direction clauses verbatim under `tag`. Returns the
    /// assigned ids (mark them consumed, as with
    /// [`ClausePool::export_step`]).
    pub fn export_base(&self, tag: BaseTag, clauses: &[Vec<Lit>]) -> Vec<u64> {
        let mut ids = Vec::new();
        let mut inner = self.inner.lock().expect("pool lock");
        for clause in clauses.iter().take(self.config.export_limit) {
            if clause.is_empty() {
                continue;
            }
            let mut lits = clause.clone();
            lits.sort_unstable();
            lits.dedup();
            let entry = BaseEntry { lits, tag };
            let h = Self::base_hash(&entry);
            if !inner.dedup.insert(h) {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let id = inner.next_id;
            inner.next_id += 1;
            inner.bytes += STEP_ENTRY_OVERHEAD + entry.lits.len() * POOL_LIT_BYTES;
            inner.base.push_back((id, entry));
            ids.push(id);
        }
        self.exports.fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.enforce_budget(&mut inner);
        ids
    }

    /// Instantiates every step entry not yet in `consumed` whose frame
    /// span fits inside `tables`, marking handed-out ids consumed.
    /// Entries spanning deeper than the caller's stamped window are left
    /// unconsumed for a later, deeper import.
    pub fn import_step(
        &self,
        consumed: &mut HashSet<u64>,
        tables: &StepTables<'_>,
    ) -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        let inner = self.inner.lock().expect("pool lock");
        for (id, entry) in &inner.step {
            if out.len() >= self.config.import_limit {
                break;
            }
            if consumed.contains(id) || (entry.span_top as usize) >= tables.window_bases.len() {
                continue;
            }
            let clause: Option<Vec<Lit>> = entry
                .lits
                .iter()
                .map(|&l| match l {
                    PoolLit::X { bit, neg } => {
                        let base = *tables.x_lits.get(bit as usize)?;
                        Some(if neg { !base } else { base })
                    }
                    PoolLit::Frame { frame, slot, neg } => {
                        if (slot as usize) >= tables.window_width {
                            return None;
                        }
                        let v = tables.window_bases[frame as usize] + slot as usize;
                        let base = Lit::pos(crate::lit::Var::from_index(v));
                        Some(if neg { !base } else { base })
                    }
                })
                .collect();
            let Some(clause) = clause else { continue };
            consumed.insert(*id);
            out.push(clause);
        }
        drop(inner);
        if !out.is_empty() {
            self.imports.fetch_add(out.len() as u64, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Hands out every base entry not yet in `consumed` whose tag the
    /// caller vouches for (`accept` returns true iff the tag names a
    /// point in the importing solver's own addition history), marking
    /// handed-out ids consumed.
    pub fn import_base(
        &self,
        consumed: &mut HashSet<u64>,
        mut accept: impl FnMut(&BaseTag) -> bool,
    ) -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        let inner = self.inner.lock().expect("pool lock");
        for (id, entry) in &inner.base {
            if out.len() >= self.config.import_limit {
                break;
            }
            if consumed.contains(id) || !accept(&entry.tag) {
                continue;
            }
            consumed.insert(*id);
            out.push(entry.lits.clone());
        }
        drop(inner);
        if !out.is_empty() {
            self.imports.fetch_add(out.len() as u64, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(v: usize, neg: bool) -> Lit {
        let l = Lit::pos(Var::from_index(v));
        if neg {
            !l
        } else {
            l
        }
    }

    /// Layout: X at vars 10..14, frames of width 6 at bases 14, 30, 50.
    fn tables<'a>(bases: &'a [usize], x: &'a [Lit]) -> StepTables<'a> {
        StepTables { window_bases: bases, window_width: 6, x_lits: x }
    }

    fn x_lits(base: usize, n: usize) -> Vec<Lit> {
        (0..n).map(|i| lit(base + i, false)).collect()
    }

    #[test]
    fn step_roundtrip_relocates_across_layouts() {
        let pool = ClausePool::default();
        let x = x_lits(10, 4);
        let src = tables(&[14, 30, 50], &x);
        // (¬x1 ∨ f0.s2 ∨ ¬f2.s5) in the source layout.
        let clause = vec![lit(11, true), lit(16, false), lit(55, true)];
        let ids = pool.export_step(&[clause], &src);
        assert_eq!(ids.len(), 1);

        // A different session: X at 100..104, frames at 104, 200, 777.
        let x2 = x_lits(100, 4);
        let dst = tables(&[104, 200, 777], &x2);
        let mut consumed = HashSet::new();
        let got = pool.import_step(&mut consumed, &dst);
        assert_eq!(got, vec![vec![lit(101, true), lit(106, false), lit(782, true)]]);
        assert_eq!(pool.stats().hits, 1);
        // Consumed: a second import hands out nothing.
        assert!(pool.import_step(&mut consumed, &dst).is_empty());
        assert_eq!(pool.stats().hits, 1, "empty imports are not hits");
    }

    #[test]
    fn step_export_rejects_out_of_window_vars() {
        let pool = ClausePool::default();
        let x = x_lits(10, 4);
        let src = tables(&[14, 30], &x);
        // Var 25 is between windows (a guard/selector): not poolable.
        assert!(pool.export_step(&[vec![lit(14, false), lit(25, false)]], &src).is_empty());
        // Var 3 is below the X range: not poolable.
        assert!(pool.export_step(&[vec![lit(3, false)]], &src).is_empty());
        // Var 36 is past the last window's width: not poolable.
        assert!(pool.export_step(&[vec![lit(36, true)]], &src).is_empty());
        assert_eq!(pool.stats().exports, 0);
    }

    #[test]
    fn deep_entries_wait_for_a_deep_enough_importer() {
        let pool = ClausePool::default();
        let x = x_lits(0, 2);
        let src = tables(&[2, 10, 20], &x);
        pool.export_step(&[vec![lit(21, false)]], &src); // frame 2
        let x2 = x_lits(40, 2);
        let shallow = tables(&[42], &x2);
        let mut consumed = HashSet::new();
        assert!(pool.import_step(&mut consumed, &shallow).is_empty());
        assert!(consumed.is_empty(), "unfitting entries stay unconsumed");
        let deep_bases = [42usize, 60, 80];
        let deep = StepTables { window_bases: &deep_bases, window_width: 6, x_lits: &x2 };
        assert_eq!(pool.import_step(&mut consumed, &deep), vec![vec![lit(81, false)]]);
    }

    #[test]
    fn shift_up_instantiation_lands_in_deeper_frames() {
        // Learnt over frames {0,1} + X; instantiated at δ=1 by handing the
        // importer tables whose "frame 0" is physical frame 1 and whose
        // X substitution is frame 1's state map.
        let pool = ClausePool::default();
        let x = x_lits(0, 2);
        let src = tables(&[2, 10], &x);
        pool.export_step(&[vec![lit(0, true), lit(11, false)]], &src);
        // Importer physical layout: frames at 2, 10, 20; frame-1 state
        // substitution (its "X") happens to be frame 0's outputs at 8,9.
        let delta_x = vec![lit(8, false), lit(9, false)];
        let shifted_bases = [10usize, 20];
        let shifted =
            StepTables { window_bases: &shifted_bases, window_width: 6, x_lits: &delta_x };
        let mut consumed = HashSet::new();
        assert_eq!(
            pool.import_step(&mut consumed, &shifted),
            vec![vec![lit(8, true), lit(21, false)]]
        );
    }

    #[test]
    fn duplicates_are_rejected() {
        let pool = ClausePool::default();
        let x = x_lits(10, 4);
        let src = tables(&[14], &x);
        let c = vec![lit(15, false), lit(11, true)];
        assert_eq!(pool.export_step(std::slice::from_ref(&c), &src).len(), 1);
        assert!(pool.export_step(&[c], &src).is_empty());
        assert_eq!(pool.stats().duplicates, 1);
        assert_eq!(pool.stats().entries, 1);
    }

    #[test]
    fn base_roundtrip_is_tag_guarded() {
        let pool = ClausePool::default();
        let tag = BaseTag { num_vars: 100, problem_hash: 0xfeed };
        pool.export_base(tag, &[vec![lit(3, false), lit(7, true)]]);
        let mut consumed = HashSet::new();
        // A consumer that never saw this tag gets nothing…
        assert!(pool.import_base(&mut consumed, |_| false).is_empty());
        assert!(consumed.is_empty());
        // …a consumer whose history contains it replays the clause.
        let got = pool.import_base(&mut consumed, |t| *t == tag);
        assert_eq!(got, vec![vec![lit(3, false), lit(7, true)]]);
        assert!(pool.import_base(&mut consumed, |t| *t == tag).is_empty());
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        let pool = ClausePool::new(PoolConfig {
            max_bytes: 3 * (STEP_ENTRY_OVERHEAD + POOL_LIT_BYTES),
            ..PoolConfig::default()
        });
        let x = x_lits(0, 8);
        let src = tables(&[8], &x);
        for i in 0..5 {
            pool.export_step(&[vec![lit(i, false)]], &src);
        }
        let s = pool.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.entries, 3);
        // The survivors are the three newest.
        let mut consumed = HashSet::new();
        let got = pool.import_step(&mut consumed, &src);
        assert_eq!(got, vec![vec![lit(2, false)], vec![lit(3, false)], vec![lit(4, false)]]);
        // Evicted hashes were forgotten: the old clause can re-enter.
        assert_eq!(pool.export_step(&[vec![lit(0, false)]], &src).len(), 1);
    }

    #[test]
    fn exporters_skip_their_own_clauses_via_ids() {
        let pool = ClausePool::default();
        let x = x_lits(0, 2);
        let src = tables(&[2], &x);
        let ids = pool.export_step(&[vec![lit(3, false)]], &src);
        let mut consumed: HashSet<u64> = ids.into_iter().collect();
        assert!(pool.import_step(&mut consumed, &src).is_empty());
    }
}
