//! Structured stress families for the CDCL solver: crafted instances with
//! known satisfiability, exercising learning, restarts, and the clause-
//! database reduction machinery harder than the random smoke tests.

use genfv_sat::{dimacs, Lit, SolveResult, Solver, SolverConfig, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn fresh_vars(s: &mut Solver, n: usize) -> Vec<Lit> {
    (0..n).map(|_| Lit::pos(s.new_var())).collect()
}

/// XOR chains (parity constraints) — hard for resolution when long.
/// x1 ⊕ x2 ⊕ ... ⊕ xn = parity, CNF-encoded pairwise with Tseitin vars.
fn add_xor_chain(s: &mut Solver, vars: &[Lit], parity: bool) {
    let mut acc = vars[0];
    for &v in &vars[1..] {
        // t = acc ⊕ v
        let t = Lit::pos(s.new_var());
        s.add_clause([!t, acc, v]);
        s.add_clause([!t, !acc, !v]);
        s.add_clause([t, !acc, v]);
        s.add_clause([t, acc, !v]);
        acc = t;
    }
    s.add_clause([if parity { acc } else { !acc }]);
}

#[test]
fn xor_chain_consistency() {
    // A chain forced to even parity plus a unit forcing odd on the same
    // variables is UNSAT; a single consistent system is SAT.
    for n in [8usize, 16, 32, 64] {
        let mut s = Solver::new();
        let vars = fresh_vars(&mut s, n);
        add_xor_chain(&mut s, &vars, true);
        assert!(s.solve().is_sat(), "odd-parity chain n={n} satisfiable");
        // Model must actually have odd parity.
        let ones = vars.iter().filter(|&&v| s.value(v) == Some(true)).count();
        assert_eq!(ones % 2, 1, "model parity n={n}");

        add_xor_chain(&mut s, &vars, false);
        assert!(s.solve().is_unsat(), "contradictory parities n={n}");
    }
}

/// Mutilated-chessboard-flavoured instance: pigeonhole with one extra
/// "blocked" assignment, still UNSAT.
#[test]
fn php_with_blocked_cells() {
    let n = 6usize;
    let mut s = Solver::new();
    let mut p = vec![vec![Lit::UNDEF; n]; n + 1];
    for row in p.iter_mut() {
        for cell in row.iter_mut() {
            *cell = Lit::pos(s.new_var());
        }
    }
    for row in &p {
        s.add_clause(row.clone());
    }
    for h in 0..n {
        for (i, row_i) in p.iter().enumerate() {
            for row_j in p.iter().skip(i + 1) {
                s.add_clause([!row_i[h], !row_j[h]]);
            }
        }
    }
    // Block the diagonal for good measure.
    for (i, row) in p.iter().enumerate().take(n) {
        s.add_clause([!row[i]]);
    }
    assert!(s.solve().is_unsat());
    let st = s.stats();
    assert!(st.conflicts > 0, "PHP must require conflicts: {st:?}");
}

/// Random 3-SAT below/above the phase-transition density, cross-checked
/// against brute force (small n keeps this honest and fast).
#[test]
fn random_3sat_near_threshold() {
    let mut rng = SmallRng::seed_from_u64(0xDECAF);
    for trial in 0..40 {
        let n = 12usize;
        let density = if trial % 2 == 0 { 3.0 } else { 5.2 };
        let m = (n as f64 * density) as usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut lits = Vec::with_capacity(3);
            while lits.len() < 3 {
                let v = Var::from_index(rng.gen_range(0..n));
                if lits.iter().any(|l: &Lit| l.var() == v) {
                    continue;
                }
                lits.push(Lit::new(v, rng.gen_bool(0.5)));
            }
            clauses.push(lits);
        }
        // Brute force reference.
        let mut expected = false;
        'assign: for bits in 0u32..(1 << n) {
            for c in &clauses {
                let sat = c.iter().any(|l| ((bits >> l.var().index()) & 1 == 1) != l.is_neg());
                if !sat {
                    continue 'assign;
                }
            }
            expected = true;
            break;
        }
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve().is_sat(), expected, "trial {trial} density {density}");
    }
}

/// Long implication ladders stress propagation and backtracking depth.
#[test]
fn implication_ladder_with_deep_backtrack() {
    let n = 2000usize;
    let mut s = Solver::new();
    let v = fresh_vars(&mut s, n);
    for i in 0..(n - 1) {
        s.add_clause([!v[i], v[i + 1]]);
    }
    // Choosing v[0] forces everything; contradict the tail under
    // assumptions and confirm the core points at the head.
    assert!(s.solve_with_assumptions(&[v[0], !v[n - 1]]).is_unsat());
    let core = s.last_core().to_vec();
    assert!(!core.is_empty());
    assert!(core.iter().all(|l| *l == v[0] || *l == !v[n - 1]));
    // Still solvable afterwards.
    assert!(s.solve_with_assumptions(&[v[0]]).is_sat());
    assert_eq!(s.value(v[n - 1]), Some(true));
}

/// Clause-DB reduction must not affect correctness: run a medium-hard
/// instance with an aggressive reduction schedule and compare against the
/// default configuration.
#[test]
fn aggressive_reduction_is_sound() {
    let mk = |config: SolverConfig| -> (SolveResult, bool) {
        let n = 7usize; // PHP(8,7): UNSAT, needs real learning
        let mut s = Solver::with_config(config);
        let mut p = vec![vec![Lit::UNDEF; n]; n + 1];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.clone());
        }
        for h in 0..n {
            for (i, row_i) in p.iter().enumerate() {
                for row_j in p.iter().skip(i + 1) {
                    s.add_clause([!row_i[h], !row_j[h]]);
                }
            }
        }
        let r = s.solve();
        (r, s.stats().deleted_learnts > 0)
    };
    let (r_default, _) = mk(SolverConfig::default());
    let aggressive = SolverConfig { first_reduce: 50, reduce_inc: 10, ..Default::default() };
    let (r_aggr, _reduced) = mk(aggressive);
    assert_eq!(r_default, SolveResult::Unsat);
    assert_eq!(r_aggr, SolveResult::Unsat);
}

/// DIMACS round trip on a generated instance keeps verdicts stable.
#[test]
fn dimacs_roundtrip_preserves_verdict() {
    let mut rng = SmallRng::seed_from_u64(42);
    let n = 10usize;
    let mut text = format!("p cnf {n} 30\n");
    for _ in 0..30 {
        for _ in 0..3 {
            let v = rng.gen_range(1..=n) as i64;
            let signed = if rng.gen_bool(0.5) { v } else { -v };
            text.push_str(&format!("{signed} "));
        }
        text.push_str("0\n");
    }
    let cnf = dimacs::parse(&text).unwrap();
    let mut s1 = Solver::new();
    cnf.load_into(&mut s1);
    let verdict1 = s1.solve();

    let cnf2 = dimacs::parse(&dimacs::render(&cnf)).unwrap();
    let mut s2 = Solver::new();
    cnf2.load_into(&mut s2);
    assert_eq!(verdict1.is_sat(), s2.solve().is_sat());
}

/// Many small incremental queries on one solver instance (the model-checker
/// usage pattern: thousands of assumption solves over a growing formula).
#[test]
fn incremental_query_storm() {
    let mut s = Solver::new();
    let v = fresh_vars(&mut s, 64);
    // Sorted-pairs structure: v[i] -> v[i+2].
    for i in 0..62 {
        s.add_clause([!v[i], v[i + 2]]);
    }
    for round in 0..200usize {
        let a = v[round % 60];
        let b = v[(round % 60) + 2];
        match round % 3 {
            0 => assert!(s.solve_with_assumptions(&[a]).is_sat()),
            1 => assert!(s.solve_with_assumptions(&[a, !b]).is_unsat()),
            _ => assert!(s.solve_with_assumptions(&[!a, b]).is_sat()),
        }
    }
    // Formula keeps growing mid-storm.
    s.add_clause([v[63]]);
    assert!(s.solve().is_sat());
    assert_eq!(s.value(v[63]), Some(true));
}
