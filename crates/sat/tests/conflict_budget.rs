//! The per-query conflict-budget escape hatch, pinned at the solver
//! level: a budgeted query on a hard instance must return `Unknown`
//! within its budget (never run to completion), and the budget must be
//! consumed by exactly one solve — the next query runs unbounded and
//! reaches the real verdict. The SAT-sweep optimizer leans on both
//! halves of this contract for every miter it poses.

use genfv_sat::{Lit, SolveResult, Solver};

/// An UNSAT pigeonhole instance (`n+1` pigeons, `n` holes) — requires
/// exponentially many resolution steps, so it reliably exhausts any small
/// conflict budget.
fn pigeonhole(n: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Lit>> =
        (0..n + 1).map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect()).collect();
    for row in &p {
        s.add_clause(row.clone());
    }
    for h in 0..n {
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                s.add_clause([!p[i][h], !p[j][h]]);
            }
        }
    }
    s
}

#[test]
fn budget_exhaustion_reports_unknown_within_budget() {
    let mut s = pigeonhole(8);
    let budget = 20;
    s.set_conflict_budget(budget);
    let res = s.solve();
    assert_eq!(res, SolveResult::Unknown, "hard instance must exhaust a tiny budget");
    assert!(!res.is_sat() && !res.is_unsat());
    let spent = s.stats().last_conflicts;
    assert!(spent <= budget, "budgeted solve must stop at the budget, spent {spent} of {budget}");
}

#[test]
fn budget_is_consumed_by_one_solve() {
    let mut s = pigeonhole(7);
    s.set_conflict_budget(5);
    assert_eq!(s.solve(), SolveResult::Unknown);
    // No budget re-arm: the very next query runs to completion and finds
    // the instance UNSAT, spending more conflicts than the old budget.
    let res = s.solve();
    assert_eq!(res, SolveResult::Unsat, "unbudgeted re-solve reaches the real verdict");
    assert!(s.stats().last_conflicts > 5, "second solve was not silently budgeted");
}

#[test]
fn budget_does_not_truncate_easy_queries() {
    let mut s = Solver::new();
    let a = Lit::pos(s.new_var());
    let b = Lit::pos(s.new_var());
    s.add_clause([a, b]);
    s.add_clause([!a, b]);
    s.set_conflict_budget(1_000);
    assert_eq!(s.solve(), SolveResult::Sat, "budget above the need changes nothing");
    assert_eq!(s.value(b), Some(true));
}

#[test]
fn budgeted_unknown_under_assumptions_is_rearmable() {
    // The sweep pattern: one long-lived solver, activation-literal
    // queries, a fresh budget armed per query.
    let mut s = pigeonhole(8);
    let sel = Lit::pos(s.new_var());
    for _ in 0..3 {
        s.set_conflict_budget(10);
        let res = s.solve_with_assumptions(&[sel]);
        assert_eq!(res, SolveResult::Unknown);
        assert!(s.stats().last_conflicts <= 10);
    }
}
