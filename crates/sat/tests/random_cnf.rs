//! Property-based differential testing of the CDCL solver against a
//! brute-force truth-table reference on random small CNFs, plus structured
//! incremental-solving scenarios.

use genfv_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// Brute-force satisfiability over `num_vars <= 16` variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for assignment in 0u32..(1u32 << num_vars) {
        for clause in clauses {
            let mut sat = false;
            for &l in clause {
                let bit = (assignment >> l.var().index()) & 1 == 1;
                if bit != l.is_neg() {
                    sat = true;
                    break;
                }
            }
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Checks that a model returned by the solver actually satisfies the CNF.
fn model_satisfies(solver: &Solver, clauses: &[Vec<Lit>]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&l| {
            solver.value(l) == Some(true)
                || solver.value(l).is_none() && {
                    // Unassigned variables are unconstrained; any value works, so a
                    // clause containing one is satisfiable by extension. The solver
                    // only leaves a var unassigned if no clause forced it, in which
                    // case some other literal in this clause must already be true —
                    // except for clauses made entirely of don't-cares. Treat
                    // unassigned positively to accept such extensions.
                    true
                }
        })
    })
}

fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4).prop_map(
            move |lits| -> Vec<Lit> {
                lits.into_iter().map(|(v, neg)| Lit::new(Var::from_index(v), neg)).collect()
            },
        );
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |cs| (nv, cs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force((num_vars, clauses) in arb_cnf(8, 24)) {
        let expected = brute_force_sat(num_vars, &clauses);
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let got = s.solve();
        prop_assert_eq!(got.is_sat(), expected, "cnf: {:?}", clauses);
        if got.is_sat() {
            prop_assert!(model_satisfies(&s, &clauses));
        }
    }

    #[test]
    fn incremental_assumption_solving_is_consistent(
        (num_vars, clauses) in arb_cnf(8, 16),
        asm_bits in proptest::collection::vec(any::<bool>(), 3),
    ) {
        // Solving with assumptions must equal solving the CNF plus the
        // assumptions as unit clauses.
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let asm: Vec<Lit> = asm_bits
            .iter()
            .enumerate()
            .take(num_vars)
            .map(|(i, &neg)| Lit::new(Var::from_index(i), neg))
            .collect();
        let with_asm = s.solve_with_assumptions(&asm);

        let mut clauses2 = clauses.clone();
        for &a in &asm {
            clauses2.push(vec![a]);
        }
        let expected = brute_force_sat(num_vars, &clauses2);
        prop_assert_eq!(with_asm.is_sat(), expected);

        // The solver must remain usable and consistent afterwards.
        let plain = s.solve();
        prop_assert_eq!(plain.is_sat(), brute_force_sat(num_vars, &clauses));
    }

    #[test]
    fn unsat_core_is_sound(
        (num_vars, clauses) in arb_cnf(6, 12),
        asm_bits in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        let asm: Vec<Lit> = asm_bits
            .iter()
            .enumerate()
            .take(num_vars)
            .map(|(i, &neg)| Lit::new(Var::from_index(i), neg))
            .collect();
        if s.solve_with_assumptions(&asm) == SolveResult::Unsat {
            let core: Vec<Lit> = s.last_core().to_vec();
            // Core literals must come from the assumptions (possibly negated
            // convention: we return original polarity).
            for l in &core {
                prop_assert!(asm.contains(l), "core lit {l:?} not among assumptions");
            }
            // Re-solving under just the core must still be UNSAT (soundness
            // of the core) — unless the formula itself is UNSAT.
            if !core.is_empty() {
                let r = s.solve_with_assumptions(&core);
                prop_assert_eq!(r, SolveResult::Unsat);
            } else {
                prop_assert_eq!(s.solve(), SolveResult::Unsat);
            }
        }
    }
}

#[test]
fn php_family_unsat() {
    // Pigeonhole principle instances PHP(n+1, n) are classically hard
    // UNSAT instances that exercise learning and restarts.
    for n in 2..=6usize {
        let mut s = Solver::new();
        let mut p = vec![vec![Lit::UNDEF; n]; n + 1];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.clone());
        }
        for h in 0..n {
            for (i, row_i) in p.iter().enumerate() {
                for row_j in p.iter().skip(i + 1) {
                    s.add_clause([!row_i[h], !row_j[h]]);
                }
            }
        }
        assert!(s.solve().is_unsat(), "PHP({},{}) must be UNSAT", n + 1, n);
    }
}

#[test]
fn graph_coloring_k3_on_cycles() {
    // Odd cycles are not 2-colourable but are 3-colourable.
    for len in [3usize, 5, 7, 9] {
        for colors in [2usize, 3] {
            let mut s = Solver::new();
            let mut node = vec![vec![Lit::UNDEF; colors]; len];
            for row in node.iter_mut() {
                for cell in row.iter_mut() {
                    *cell = Lit::pos(s.new_var());
                }
            }
            for row in &node {
                s.add_clause(row.clone());
                for c1 in 0..colors {
                    for c2 in (c1 + 1)..colors {
                        s.add_clause([!row[c1], !row[c2]]);
                    }
                }
            }
            for i in 0..len {
                let j = (i + 1) % len;
                for (&a, &b) in node[i].iter().zip(&node[j]) {
                    s.add_clause([!a, !b]);
                }
            }
            let result = s.solve();
            if colors == 2 {
                assert!(result.is_unsat(), "odd cycle len {len} 2-colourable?");
            } else {
                assert!(result.is_sat(), "cycle len {len} must be 3-colourable");
            }
        }
    }
}

#[test]
fn incremental_strengthening_monotone() {
    // Adding clauses can only shrink the solution set: once UNSAT, always
    // UNSAT under further additions.
    let mut s = Solver::new();
    let v: Vec<Lit> = (0..6).map(|_| Lit::pos(s.new_var())).collect();
    s.add_clause([v[0], v[1]]);
    assert!(s.solve().is_sat());
    s.add_clause([!v[0]]);
    assert!(s.solve().is_sat());
    s.add_clause([!v[1]]);
    assert!(s.solve().is_unsat());
    s.add_clause([v[2], v[3]]);
    assert!(s.solve().is_unsat());
}
