//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this path crate provides
//! the (small) API subset the workspace actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_bool`, and `gen_range` over integer and float ranges. The generator
//! is splitmix64 — statistically fine for test-data generation and the
//! synthetic-LLM sampling this workspace does, and fully deterministic for
//! a given seed. It is **not** the upstream implementation: streams differ
//! from real `rand` for the same seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from the whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The element type is a trait
/// parameter (as in real `rand`) so inference can flow from the use site
/// into integer-literal ranges.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// The user-facing sampling methods (blanket-implemented for every core
/// generator, like real `rand`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..4usize);
            assert!(v < 4);
            let w = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
