//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this path crate
//! implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, `any`, `Just`,
//! integer-range and tuple strategies, `collection::vec`, `option::of`, a
//! small regex-pattern string strategy, and the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, and `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test stream (seeded by the test name), there is **no shrinking** —
//! a failing case panics with the generated inputs in the assertion
//! message — and regex support covers only char classes, `.`, literals,
//! and `{n,m}` repetition, which is what the tests here use.

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream that drives all generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Builds the per-test RNG used by the [`proptest!`] macro expansion.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    TestRng::new(h.finish() ^ 0x9E37_79B9_7F4A_7C15)
}

/// Run configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    alts: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `alts` is empty.
    pub fn new(alts: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alts }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy (for `&str` patterns)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct PatternAtom {
    /// Candidate characters.
    chars: Vec<char>,
    /// Inclusive repetition bounds.
    lo: usize,
    hi: usize,
}

/// Characters matched by `.` in this shim (printable ASCII, whitespace, and
/// a couple of multi-byte characters so UTF-8 handling gets exercised).
fn dot_chars() -> Vec<char> {
    let mut cs: Vec<char> = (' '..='~').collect();
    cs.extend(['\n', '\t', 'é', 'λ', '\u{2028}']);
    cs
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars.next().expect("unterminated char class in pattern");
        match c {
            ']' => break,
            '\\' => {
                let e = chars.next().expect("dangling escape in char class");
                out.push(match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut look = chars.clone();
                    look.next(); // consume '-'
                    match look.peek() {
                        Some(&']') | None => out.push(c),
                        Some(&hi) => {
                            chars.next();
                            chars.next();
                            for v in c..=hi {
                                out.push(v);
                            }
                        }
                    }
                } else {
                    out.push(c);
                }
            }
        }
    }
    assert!(!out.is_empty(), "empty char class in pattern");
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition bound"),
            hi.trim().parse().expect("bad repetition bound"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => dot_chars(),
            '[' => parse_class(&mut chars),
            '\\' => {
                let e = chars.next().expect("dangling escape in pattern");
                vec![match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }]
            }
            other => vec![other],
        };
        let (lo, hi) = parse_repeat(&mut chars);
        atoms.push(PatternAtom { chars: set, lo, hi });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.hi - atom.lo + 1) as u64;
            let n = atom.lo + rng.below(span) as usize;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$( $crate::boxed($strat) ),+])
    };
}

/// Asserts inside a property test (no shrinking: panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::test_rng("ranges_and_tuples");
        for _ in 0..200 {
            let v = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let (a, b) = ((0u8..3), any::<bool>()).generate(&mut rng);
            assert!(a < 3);
            let _: bool = b;
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::test_rng("vec_sizes");
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..=5).generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let w = crate::collection::vec(any::<u8>(), 4).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::test_rng("patterns");
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,10}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~\\n]{0,40}".generate(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn oneof_map_flatmap_compose() {
        let mut rng = crate::test_rng("compose");
        let strat = prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(9u32),
            (1u8..3).prop_flat_map(|n| 0u32..(n as u32 + 1)),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 || v == 9 || v < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_runs((a, b) in (0u8..10, 0u8..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            if flag {
                prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
            }
        }
    }
}
