//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this path crate provides
//! the benchmarking API subset the workspace uses: [`Criterion`],
//! benchmark groups with `sample_size`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId::from_parameter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — one warm-up run, then
//! `sample_size` timed runs per benchmark — and every measurement is
//! recorded on the [`Criterion`] instance so benches can export a
//! machine-readable summary with [`Criterion::export_json`] (the real
//! criterion writes equivalent data under `target/criterion/`). Statistical
//! analysis, plots, and baseline comparison are out of scope.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Group name.
    pub group: String,
    /// Benchmark name within the group.
    pub bench: String,
    /// Timed runs.
    pub samples: usize,
    /// Mean wall-clock per run.
    pub mean: Duration,
    /// Fastest run.
    pub min: Duration,
    /// Slowest run.
    pub max: Duration,
}

/// The benchmark driver; collects [`Measurement`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: 10 }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Writes all recorded measurements as a JSON array to `path`.
    ///
    /// # Panics
    /// Panics if the file cannot be written (benches treat that as fatal).
    pub fn export_json(&self, path: &str) {
        let mut out = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let comma = if i + 1 == self.measurements.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \
                 \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}",
                escape(&m.group),
                escape(&m.bench),
                m.samples,
                m.mean.as_nanos(),
                m.min.as_nanos(),
                m.max.as_nanos(),
                comma
            );
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Identifies a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        SAMPLE_SIZE.with(|s| s.set(self.sample_size));
        let mut b = Bencher { runs: Vec::new() };
        f(&mut b);
        self.record(id, b);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        SAMPLE_SIZE.with(|s| s.set(self.sample_size));
        let mut b = Bencher { runs: Vec::new() };
        f(&mut b, input);
        self.record(id.name, b);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}

    fn record(&mut self, bench: String, b: Bencher) {
        // The closure passed to `iter` has already produced one warm-up
        // run plus `sample_size` timed runs (see `Bencher::iter`).
        let runs = &b.runs;
        assert!(!runs.is_empty(), "bench `{bench}` never called Bencher::iter");
        let total: Duration = runs.iter().sum();
        let mean = total / runs.len() as u32;
        let min = *runs.iter().min().expect("non-empty");
        let max = *runs.iter().max().expect("non-empty");
        println!(
            "{:<40} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            format!("{}/{}", self.name, bench),
            min,
            mean,
            max,
            runs.len()
        );
        self.parent.measurements.push(Measurement {
            group: self.name.clone(),
            bench,
            samples: runs.len(),
            mean,
            min,
            max,
        });
    }
}

// `sample_size` lives on the group; smuggle it into the bencher via a
// thread local so `iter` knows how many runs to time.
thread_local! {
    static SAMPLE_SIZE: std::cell::Cell<usize> = const { std::cell::Cell::new(10) };
}

/// Times closures.
pub struct Bencher {
    runs: Vec<Duration>,
}

impl Bencher {
    /// One warm-up call, then the configured number of timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = SAMPLE_SIZE.with(|s| s.get());
        black_box(f());
        for _ in 0..n {
            let t0 = Instant::now();
            black_box(f());
            self.runs.push(t0.elapsed());
        }
    }
}

/// Declares a group-runner function executing each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the given group functions on one shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn records_measurements() {
        let mut c = Criterion::new();
        quick(&mut c);
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.samples == 3));
    }

    #[test]
    fn json_export_roundtrips_names() {
        let mut c = Criterion::new();
        quick(&mut c);
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        c.export_json(path);
        let body = std::fs::read_to_string(path).expect("read back");
        assert!(body.contains("\"group\": \"g\""));
        assert!(body.contains("\"bench\": \"sum\""));
        let _ = std::fs::remove_file(path);
    }
}
