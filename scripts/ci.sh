#!/usr/bin/env bash
# The repo's full gate set. Tier-1 (enforced): release build + tests.
# Formatting and clippy are pinned so style drift cannot accumulate, and
# the incremental-vs-rebuild bench runs in quick mode as an end-to-end
# differential check (it exits nonzero on any verdict divergence) while
# refreshing BENCH_incremental.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --lib -- -D warnings
cargo build --release
cargo test -q
cargo run --release -p genfv-bench --bin e8_incremental_sessions -- --quick
