#!/usr/bin/env bash
# The repo's full gate set. Tier-1 (enforced): release build + tests.
# Formatting and clippy (all targets: lib + tests + benches) are pinned so
# style drift cannot accumulate, and the differential benches run in quick
# mode as end-to-end checks (each exits nonzero on any verdict
# divergence): e8 races incremental vs rebuild sessions, e9 races
# single-solver vs portfolio sessions, e10 races template-stamped vs
# DAG-walk frame encodings, e11 races a warm (session-cached) vs cold
# verification service on repeat traffic, e12 races OptLevel::Full vs
# OptLevel::None prepares (exits nonzero on any verdict regression or if
# the datapath designs stop shrinking), e13 races cold vs clause-pooled
# sessions with cube-and-conquer armed (exits nonzero on any verdict
# divergence or zero pool hits), e14 races warm service traffic with
# tracing Off vs Full (exits nonzero if Full overhead exceeds 5% or the
# exported Chrome trace fails its schema check), e15 races
# OptLevel::SatSweep vs OptLevel::Full prepares (exits nonzero on any
# verdict regression, zero datapath merges, or a busted conflict-budget
# envelope). Quick-mode JSON goes to
# target/ so the committed full-run BENCH_*.json files (5-sample medians)
# are never clobbered by 2-sample gate numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
GENFV_BENCH_JSON=target/ci-BENCH_incremental.json \
    cargo run --release -p genfv-bench --bin e8_incremental_sessions -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_portfolio.json \
    cargo run --release -p genfv-bench --bin e9_portfolio -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_unroll.json \
    cargo run --release -p genfv-bench --bin e10_template_unroll -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_service.json \
    cargo run --release -p genfv-bench --bin e11_service -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_opt.json \
    cargo run --release -p genfv-bench --bin e12_opt -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_cube.json \
    cargo run --release -p genfv-bench --bin e13_cube -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_obs.json \
    cargo run --release -p genfv-bench --bin e14_obs -- --quick
GENFV_BENCH_JSON=target/ci-BENCH_satsweep.json \
    cargo run --release -p genfv-bench --bin e15_satsweep -- --quick
