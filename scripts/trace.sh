#!/usr/bin/env bash
# Trace one design/flow run: writes a Perfetto-loadable trace.json and
# prints the span tree to stdout.
#
#   scripts/trace.sh                         # first corpus design, baseline flow
#   scripts/trace.sh gray_counter            # pick a design (--list to enumerate)
#   scripts/trace.sh hamming74 --flow flow1  # baseline|flow1|flow2|combined
#   scripts/trace.sh lfsr16 --deterministic  # logical clock instead of wall time
#   scripts/trace.sh --list
#
# Extra arguments pass straight through to the `trace` binary
# (e.g. --out other.json).
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p genfv-bench --bin trace -- "$@"
