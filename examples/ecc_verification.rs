//! ECC verification scenario (the paper's second design family).
//!
//! Exercises both flows on the ECC corpus: Flow 1 generates lemmas from
//! spec + RTL upfront; Flow 2 reacts to induction failures. The
//! recirculating `ecc_counter` mirrors the paper's counters example in the
//! ECC domain: its lockstep property fails induction at every depth until
//! the redundancy lemma `dec_out == count` is proven and assumed.
//!
//! Run with: `cargo run --example ecc_verification`

use genfv::prelude::*;

fn main() -> Result<(), Error> {
    for name in ["parity_pipe", "hamming74", "secded84", "ecc_counter"] {
        let bundle = genfv::designs::by_name(name).expect("corpus design");
        println!("────────────────────────────────────────────────────────");
        println!("design: {name}\nspec  : {}", bundle.spec);

        // Baseline: where does plain induction land?
        let baseline = run_baseline(&bundle.prepare()?, &FlowConfig::default());
        println!("\nplain k-induction:");
        print!("{}", genfv::core::summarize_targets(&baseline));

        // Flow 1: upfront lemma generation from spec + RTL.
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7);
        let flow1 = run_flow1(bundle.prepare()?, &mut llm, &FlowConfig::default());
        println!("\nflow 1 (spec+RTL lemmas):");
        print!("{}", genfv::core::summarize_targets(&flow1));
        for lemma in &flow1.lemmas {
            println!("  lemma: {}", lemma.text);
        }

        // Flow 2: CEX-driven repair (only consulted on step failures).
        let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 7);
        let flow2 = run_flow2(bundle.prepare()?, &mut llm, &FlowConfig::default());
        println!("\nflow 2 (CEX-driven repair):");
        print!("{}", genfv::core::summarize_targets(&flow2));
        println!(
            "  llm calls: {}, lemmas accepted: {}, rejected (compile/false/non-inductive): {}/{}/{}",
            flow2.metrics.llm_calls,
            flow2.metrics.lemmas_accepted,
            flow2.metrics.rejected_compile,
            flow2.metrics.rejected_false,
            flow2.metrics.rejected_not_inductive,
        );
        assert!(flow2.all_proven(), "{name}: flow 2 must close all ECC targets");
        println!();
    }
    println!("All ECC designs verified.");
    Ok(())
}
