//! Model-quality comparison (the paper's Section-V observation).
//!
//! Runs Flow 2 with each emulated model profile over the lemma-hungry
//! corpus and prints per-model quality metrics. The expected shape matches
//! the paper: the GPT-4-class profiles close more targets with fewer
//! hallucinated (rejected) assertions than the Llama/Gemini-class ones.
//!
//! Run with: `cargo run --example model_comparison`

use genfv::prelude::*;

fn main() -> Result<(), Error> {
    let corpus = genfv::designs::lemma_hungry_designs();
    println!(
        "Comparing {} model profiles over {} lemma-hungry designs\n",
        ModelProfile::ALL.len(),
        corpus.len()
    );

    let mut table = genfv::core::Table::new([
        "model",
        "targets closed",
        "lemmas",
        "rejected",
        "llm calls",
        "completion tokens",
    ]);
    for profile in ModelProfile::ALL {
        let mut closed = 0usize;
        let mut total = 0usize;
        let mut lemmas = 0usize;
        let mut rejected = 0usize;
        let mut calls = 0usize;
        let mut tokens = 0usize;
        for bundle in &corpus {
            let mut llm = SyntheticLlm::new(profile, 1234);
            let report = run_flow2(bundle.prepare()?, &mut llm, &FlowConfig::default());
            total += report.targets.len();
            closed += report.targets.iter().filter(|t| t.outcome.is_proven()).count();
            lemmas += report.metrics.lemmas_accepted;
            rejected += report.metrics.rejected_compile
                + report.metrics.rejected_false
                + report.metrics.rejected_not_inductive;
            calls += report.metrics.llm_calls;
            tokens += report.metrics.completion_tokens;
        }
        table.row([
            profile.name().to_string(),
            format!("{closed}/{total}"),
            lemmas.to_string(),
            rejected.to_string(),
            calls.to_string(),
            tokens.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper Section V): gpt-4-turbo ≈ gpt-4o close everything with\n\
         little junk; llama/gemini need more retries and leave targets open."
    );
    Ok(())
}
