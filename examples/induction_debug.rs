//! Induction-failure debugging walkthrough.
//!
//! Shows the artefacts a verification engineer (or an LLM) works with when
//! an induction step fails: the step counterexample as an ASCII waveform
//! and as a VCD dump, the exact prompt that Flow 2 would send, and the raw
//! completion text that comes back — junk and all — before validation.
//!
//! Run with: `cargo run --example induction_debug`

use genfv::genai::{LanguageModel, Prompt};
use genfv::prelude::*;
use std::collections::BTreeMap;

fn main() -> Result<(), Error> {
    let bundle = genfv::designs::by_name("fifo_counters").expect("corpus design");
    let design = bundle.prepare()?;

    // Find the failing target by hand to get at the raw trace.
    let target = design
        .targets
        .iter()
        .find(|t| t.name == "pointers_meet_only_when_empty")
        .expect("fifo target");
    let prover = KInduction::new(&design.ctx, &design.ts, CheckConfig::default());
    let result = prover.prove(&target.prop, &[]);

    let ProveResult::StepFailure { k, trace, .. } = result else {
        panic!("expected a step failure, got {result:?}");
    };
    println!("=== Induction step failure at k={k} ===\n");
    println!("{}", render_waveform(&trace));

    println!("=== Same trace as VCD (first lines) ===");
    let vcd = genfv::mc::to_vcd(&trace);
    for line in vcd.lines().take(14) {
        println!("{line}");
    }
    println!("... ({} bytes total)\n", vcd.len());

    // The exact Flow-2 prompt for this failure.
    let final_values: BTreeMap<String, String> = trace
        .last_step()
        .map(|s| s.values.iter().map(|(k, v)| (k.clone(), format!("{v}"))).collect())
        .unwrap_or_default();
    let prompt = Prompt::flow2(&design.rtl, &target.sva, &render_waveform(&trace), &final_values);
    println!("=== Flow-2 prompt (user payload) ===\n{}", prompt.user);

    // Ask two different profiles and show the raw completions.
    for profile in [ModelProfile::GptFourTurbo, ModelProfile::LlamaThree] {
        let mut llm = SyntheticLlm::new(profile, 99);
        let completion = llm.complete(&prompt);
        println!("=== raw completion from {} ===\n{}", llm.name(), completion.text);
        let parsed = parse_assertions(&completion.text);
        println!(
            "--> {} parseable assertion(s), {} estimated tokens, ~{:.1}s simulated latency\n",
            parsed.len(),
            completion.completion_tokens,
            completion.latency.as_secs_f64()
        );
    }

    // And the full repair loop for comparison.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 99);
    let report = run_flow2(bundle.prepare()?, &mut llm, &FlowConfig::default());
    println!("=== Flow-2 event log ===\n{}", genfv::core::render_events(&report));
    assert!(report.all_proven());
    Ok(())
}
