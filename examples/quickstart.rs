//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Listings 1-3 and Fig. 3 of the paper: the synchronized
//! 32-bit counters, the `&count1 |-> &count2` property that survives BMC
//! but fails its induction step (with a counterexample in which bit 31 of
//! `count2` is low), and the LLM-generated helper `count1 == count2` that
//! closes the proof.
//!
//! Run with: `cargo run --example quickstart`

use genfv::prelude::*;

fn main() -> Result<(), Error> {
    // The paper's Listing 1, from the shipped corpus.
    let bundle = genfv::designs::by_name("sync_counters").expect("corpus design");
    println!("=== RTL (paper Listing 1) ===\n{}", bundle.rtl.trim());
    println!("\n=== Target property (paper Listing 2) ===");
    for (name, sva) in &bundle.targets {
        println!("  {name}: {sva}");
    }

    // Step 1: plain k-induction fails its inductive step (paper Fig. 3).
    let design = bundle.prepare()?;
    let baseline = run_baseline(&design, &FlowConfig::default());
    println!("\n=== Plain k-induction (no GenAI) ===");
    print!("{}", genfv::core::summarize_targets(&baseline));
    if let TargetOutcome::StillUnproven { k, trace } = &baseline.targets[0].outcome {
        println!("\nInduction step failed at k={k}; counterexample waveform:\n");
        println!("{}", render_waveform(trace));
        if let Some(bits) = render_final_bits(trace, "count2") {
            println!("{bits}   <-- the paper's Fig. 3 observation");
        }
    }

    // Step 2: Flow 2 — the CEX and the RTL go to the (synthetic) LLM,
    // which produces helper assertions; validated lemmas close the proof.
    let mut llm = SyntheticLlm::new(ModelProfile::GptFourTurbo, 42);
    let report = run_flow2(bundle.prepare()?, &mut llm, &FlowConfig::default());
    println!("\n=== Flow 2: GenAI-augmented induction ===");
    println!("{}", genfv::core::render_events(&report));
    println!("{}", genfv::core::render_report(&report));

    assert!(report.all_proven(), "the paper's example must close");
    println!("The generated helper (paper Listing 3) closed the proof.");
    Ok(())
}
