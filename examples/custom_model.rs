//! Bringing your own model: the flows are generic over the one-method
//! [`LanguageModel`] trait, so a production deployment would implement it
//! with an HTTP client for a hosted LLM. This example implements two
//! custom models — a minimal rule-based one and a wrapper that filters
//! another model's output — and runs the paper's Flow 2 with them.
//!
//! Run with: `cargo run --example custom_model`

use genfv::genai::{Completion, LanguageModel, Prompt, PromptSections};
use genfv::prelude::*;
use std::time::Duration;

/// A tiny rule-based "model": it greps the prompt's RTL for register
/// declarations of equal width and proposes pairwise equality — roughly
/// the first thing a human formal engineer tries on lockstep designs.
struct RuleBasedModel;

impl LanguageModel for RuleBasedModel {
    fn name(&self) -> &str {
        "rule-based"
    }

    fn complete(&mut self, prompt: &Prompt) -> Completion {
        let sections = PromptSections::parse(&prompt.user);
        let mut text = String::from("Heuristic suggestions:\n\n");
        if let Some(rtl) = &sections.rtl {
            // Extremely naive register-name scraping: `output logic [..] a, b`.
            let mut groups: Vec<Vec<String>> = Vec::new();
            for line in rtl.lines() {
                if let Some(idx) = line.find(']') {
                    let rest = &line[idx + 1..];
                    let names: Vec<String> = rest
                        .trim_end_matches(");")
                        .split(',')
                        .map(|t| t.trim().trim_end_matches(';').to_string())
                        .filter(|t| {
                            !t.is_empty()
                                && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                        })
                        .collect();
                    if names.len() >= 2 {
                        groups.push(names);
                    }
                }
            }
            let mut i = 0;
            for group in groups {
                for pair in group.windows(2) {
                    text.push_str(&format!(
                        "property rule_{i};\n  {} == {};\nendproperty\n\n",
                        pair[0], pair[1]
                    ));
                    i += 1;
                }
            }
        }
        Completion {
            text,
            prompt_tokens: prompt.token_estimate(),
            completion_tokens: 40,
            latency: Duration::from_millis(1),
        }
    }
}

/// A wrapper model: delegates to an inner model and censors any completion
/// line mentioning a blocklisted signal (e.g. company-confidential names
/// must never round-trip through an external API — a realistic deployment
/// concern the trait boundary makes trivial).
struct FilteredModel<M> {
    inner: M,
    blocklist: Vec<&'static str>,
    name: String,
}

impl<M: LanguageModel> LanguageModel for FilteredModel<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&mut self, prompt: &Prompt) -> Completion {
        let mut completion = self.inner.complete(prompt);
        completion.text = completion
            .text
            .lines()
            .filter(|l| !self.blocklist.iter().any(|b| l.contains(b)))
            .collect::<Vec<_>>()
            .join("\n");
        completion
    }
}

fn main() -> Result<(), Error> {
    let bundle = genfv::designs::by_name("sync_counters_16").expect("corpus");

    println!("=== Flow 2 with a hand-rolled rule-based model ===");
    let mut model = RuleBasedModel;
    let report = run_flow2(bundle.prepare()?, &mut model, &FlowConfig::default());
    println!("{}", genfv::core::render_report(&report));
    assert!(report.all_proven(), "equality heuristic suffices for lockstep counters");

    println!("=== Same flow through a filtering wrapper ===");
    let mut filtered = FilteredModel {
        inner: SyntheticLlm::new(ModelProfile::GptFourTurbo, 42),
        blocklist: vec!["[31]"], // censor bit-31 relations, keep the rest
        name: "gpt-4-turbo+filter".to_string(),
    };
    let report = run_flow2(bundle.prepare()?, &mut filtered, &FlowConfig::default());
    println!("{}", genfv::core::render_report(&report));
    assert!(report.all_proven());
    Ok(())
}
