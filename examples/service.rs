//! Verification as a service: typed requests, streaming events, warm
//! repeat traffic.
//!
//! Spins up a `VerificationService`, streams one job's event sequence,
//! then submits the same design three more times to show the
//! warm-session cache and same-design batching at work (watch
//! `cache_hits`, `batched_jobs`, and `templates_reused` in the final
//! stats). Also demonstrates typed backpressure: a one-slot queue
//! rejects `try_submit` with `ServiceError::QueueFull` while `submit`
//! blocks until space opens.
//!
//! Run with: `cargo run --example service`

use genfv::prelude::*;

fn main() -> Result<(), Error> {
    // A one-worker service keeps the output deterministic.
    let service = VerificationService::new(
        ServiceConfig::default().with_workers(1).with_mode(CorpusMode::Flow2),
    );

    let bundle = genfv::designs::by_name("sync_counters").expect("corpus design");
    let request = |seed: u64| {
        JobRequest::new(DesignInput::Source {
            name: bundle.name.to_string(),
            rtl: bundle.rtl.to_string(),
            spec: bundle.spec.to_string(),
            targets: bundle.targets.clone(),
        })
        .with_llm(SyntheticLlm::new(ModelProfile::GptFourTurbo, seed))
    };

    // One cold job, event by event.
    println!("=== Streaming one job ===");
    let handle = service.submit(request(42)).map_err(|r| r.error)?;
    println!("submitted {}", handle.id());
    let mut final_report = None;
    while let Some(event) = handle.next_event() {
        match event {
            JobEvent::Queued { job, depth } => println!("{job}: queued (depth {depth})"),
            JobEvent::Started { job, batched, cache_hit } => {
                println!("{job}: started (batched: {batched}, cache hit: {cache_hit})")
            }
            JobEvent::TargetVerdict { job, target, outcome } => {
                println!("{job}: target `{target}` -> {outcome:?}")
            }
            JobEvent::Done { job, report } => {
                println!(
                    "{job}: done in {:?} (queued {:?}), {} lemma(s)",
                    report.run_time,
                    report.queue_wait,
                    report.flow.lemmas.len()
                );
                final_report = Some(report);
            }
            JobEvent::Failed { job, error } => println!("{job}: FAILED: {error}"),
        }
    }
    assert!(final_report.expect("job must finish").flow.all_proven());

    // Repeat traffic rides the design cache and the batcher.
    println!("\n=== Repeat traffic (same design, three more jobs) ===");
    let repeats: Vec<JobHandle> = (0..3)
        .map(|i| service.submit(request(42 + i)).map_err(|r| r.error))
        .collect::<Result<_, _>>()?;
    for handle in repeats {
        let report = handle.wait()?;
        println!(
            "{}: proven={} cache_hit={} batched={} run={:?}",
            report.job,
            report.flow.all_proven(),
            report.cache_hit,
            report.batched,
            report.run_time
        );
    }

    let stats = service.stats();
    println!("\n=== Service stats ===");
    println!("submitted:        {}", stats.submitted);
    println!("completed:        {}", stats.completed);
    println!("cache hits:       {}", stats.cache_hits);
    println!("cache misses:     {}", stats.cache_misses);
    println!("batched jobs:     {}", stats.batched_jobs);
    println!("templates reused: {}", stats.templates_reused);
    println!("clean-depth hits: {}", stats.clean_seed_hits);
    service.shutdown();

    // Typed backpressure on a deliberately tiny queue with no spare
    // capacity: the second submission is rejected, not dropped.
    println!("\n=== Backpressure ===");
    let tiny = VerificationService::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_mode(CorpusMode::Baseline),
    );
    let make = || {
        JobRequest::new(DesignInput::Source {
            name: bundle.name.to_string(),
            rtl: bundle.rtl.to_string(),
            spec: bundle.spec.to_string(),
            targets: bundle.targets.clone(),
        })
        .with_mode(CorpusMode::Baseline)
    };
    let mut accepted = Vec::new();
    let mut rejections = 0;
    for _ in 0..32 {
        match tiny.try_submit(make()) {
            Ok(handle) => accepted.push(handle),
            Err(rejected) => {
                assert!(rejected.error.is_backpressure());
                rejections += 1;
            }
        }
    }
    for handle in accepted {
        handle.wait()?;
    }
    println!("32 rapid try_submits: {rejections} typed QueueFull rejection(s)");
    Ok(())
}
